#!/usr/bin/env python3
"""Record a bench_micro suite into a committed BENCH_N.json baseline.

Two suites (``--suite``):

``decay-stress`` (default, BENCH_5.json) — runs
``bench_micro --benchmark_filter=BM_DecayStress --json``, converts each
row to accesses/second, and records the event-engine-vs-reference
speedup per scenario:

    {
      "schema": 1,
      "suite": "decay-stress",
      "git": "<git describe --always --dirty>",
      "config_hash": "<fnv1a of the scenario names>",
      "scenarios": [{"name": ..., "accesses_per_sec": ...}, ...],
      "speedups": {"interval:512/kb:64": 6.9, ...}   # event vs reference
    }

``sweep`` (BENCH_6.json) — runs the BM_Table3Sweep arena:0 pair (the
paper's Table 3 oracle-interval grid through SweepRunner, batched
lockstep pass vs scalar per-cell passes, trace arena off) and records
the batched-vs-scalar sweep speedup as ``speedups["table3"]``.

``trace`` (BENCH_7.json) — runs the arena-on/arena-off arms of
BM_HierarchySweep (scalar hierarchy path) and BM_Table3Sweep batched:1,
and records the trace-arena replay speedups as ``speedups["hierarchy"]``
and ``speedups["table3_batched"]``.

The recording refuses a dirty work tree (the committed baseline must be
attributable to a commit); ``--allow-dirty`` overrides, recording the
clean HEAD hash in ``git`` plus ``"git_dirty": true``.

``--baseline BENCH_N.json`` additionally compares the freshly measured
*speedups* (machine-independent, unlike raw throughput) against the
committed baseline with a generous regression gate (default 2x), and
``--min-speedup`` enforces an absolute floor on every recorded speedup;
either failing exits nonzero.

CI usage (see .github/workflows/ci.yml):
    python3 scripts/record_bench.py --bench ./build/bench/bench_micro \
        --out BENCH_5.ci.json --baseline BENCH_5.json --gate 2.0
    python3 scripts/record_bench.py --suite sweep \
        --bench ./build/bench/bench_micro \
        --out BENCH_6.ci.json --baseline BENCH_6.json --gate 1.6
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

UNIT_TO_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
STRESS_ROW = re.compile(r"^BM_DecayStress/(?P<scenario>.+)/event:(?P<event>[01])$")
SWEEP_ROW = re.compile(
    r"^BM_Table3Sweep/batched:(?P<batched>[01])/arena:(?P<arena>[01])$")
HIER_ROW = re.compile(r"^BM_HierarchySweep/arena:(?P<arena>[01])$")

SUITES = {
    "decay-stress": {"filter": "BM_DecayStress", "out": "BENCH_5.json"},
    "sweep": {"filter": "BM_Table3Sweep/batched:[01]/arena:0",
              "out": "BENCH_6.json"},
    "trace": {"filter": "BM_HierarchySweep|BM_Table3Sweep/batched:1",
              "out": "BENCH_7.json"},
}


def fnv1a(text):
    h = 0xCBF29CE484222325
    for b in text.encode():
        h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return "%016x" % h


def git_state(repo_root):
    """-> (describe of HEAD without any -dirty suffix, work tree dirty?)."""
    try:
        clean = subprocess.check_output(
            ["git", "describe", "--always", "--tags"],
            cwd=repo_root, text=True, stderr=subprocess.DEVNULL).strip()
        dirty = subprocess.check_output(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=repo_root, text=True, stderr=subprocess.DEVNULL).strip()
        return clean, dirty != clean
    except (OSError, subprocess.CalledProcessError):
        return "unknown", False


class BenchError(Exception):
    """A benchmark run that cannot produce a usable report."""


def run_bench(bench, bench_filter, min_time, extra_args=()):
    if not os.path.exists(bench):
        raise BenchError(
            "bench binary not found: %s (build it, or point --bench at it)"
            % bench)
    if not os.access(bench, os.X_OK):
        raise BenchError("bench binary is not executable: %s" % bench)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    env = dict(os.environ)
    # The --json export also runs the quick drowsy/gated suite; keep it
    # short — only the micro rows feed this recording.
    env.setdefault("HLCC_INSTRUCTIONS", "60000")
    env.setdefault("HLCC_PROGRESS", "0")
    cmd = [bench,
           "--benchmark_filter=%s" % bench_filter,
           "--benchmark_min_time=%g" % min_time,
           *extra_args,
           "--json", tmp_path]
    try:
        try:
            subprocess.check_call(cmd, env=env, stdout=subprocess.DEVNULL)
        except OSError as e:
            raise BenchError("cannot run %s: %s" % (bench, e))
        except subprocess.CalledProcessError as e:
            raise BenchError("%s exited with status %d" % (bench, e.returncode))
        try:
            with open(tmp_path) as f:
                doc = json.load(f)
        except json.JSONDecodeError as e:
            raise BenchError("%s wrote invalid JSON: %s" % (bench, e))
        except OSError as e:
            raise BenchError("cannot read bench report: %s" % e)
    finally:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
    if not isinstance(doc, dict):
        raise BenchError("%s wrote a non-object JSON report" % bench)
    return doc


def extract(doc):
    """micro rows -> ({row name: accesses/sec}, {scenario: speedup})."""
    throughput = {}
    for row in doc.get("micro", []):
        m = STRESS_ROW.match(row["name"])
        if not m:
            continue
        per_iter = row["real_time"] * UNIT_TO_SECONDS[row["time_unit"]]
        if per_iter <= 0:
            continue
        throughput[row["name"]] = 1.0 / per_iter  # one access per iteration
    speedups = {}
    for name, aps in throughput.items():
        m = STRESS_ROW.match(name)
        if m.group("event") != "1":
            continue
        ref = throughput.get("BM_DecayStress/%s/event:0" % m.group("scenario"))
        if ref:
            speedups[m.group("scenario")] = aps / ref
    return throughput, speedups


def extract_sweep(doc):
    """micro rows -> ({row name: sweeps/sec}, {"table3": batched speedup}).

    Uses CPU time and keeps the best of the repetitions per arm: the
    sweep pair runs for seconds per iteration, so on a busy (CI) host a
    single wall-clock sample of one arm can skew the ratio badly.
    """
    throughput = {}
    for row in doc.get("micro", []):
        m = SWEEP_ROW.match(row["name"])
        if not m:
            continue
        per_iter = row["cpu_time"] * UNIT_TO_SECONDS[row["time_unit"]]
        if per_iter <= 0:
            continue
        rate = 1.0 / per_iter  # one full grid per iteration
        name = row["name"]
        throughput[name] = max(throughput.get(name, 0.0), rate)
    speedups = {}
    batched = throughput.get("BM_Table3Sweep/batched:1/arena:0")
    scalar = throughput.get("BM_Table3Sweep/batched:0/arena:0")
    if batched and scalar:
        speedups["table3"] = batched / scalar
    return throughput, speedups


def extract_trace(doc):
    """micro rows -> ({row name: sweeps/sec}, arena-replay speedups).

    Same best-of-repetitions CPU-time policy as extract_sweep; the
    speedups pair each benchmark's arena:1 arm against its arena:0 arm.
    """
    throughput = {}
    for row in doc.get("micro", []):
        if not (SWEEP_ROW.match(row["name"]) or HIER_ROW.match(row["name"])):
            continue
        per_iter = row["cpu_time"] * UNIT_TO_SECONDS[row["time_unit"]]
        if per_iter <= 0:
            continue
        rate = 1.0 / per_iter  # one full grid per iteration
        name = row["name"]
        throughput[name] = max(throughput.get(name, 0.0), rate)
    speedups = {}
    pairs = {
        "hierarchy": ("BM_HierarchySweep/arena:1",
                      "BM_HierarchySweep/arena:0"),
        "table3_batched": ("BM_Table3Sweep/batched:1/arena:1",
                           "BM_Table3Sweep/batched:1/arena:0"),
    }
    for key, (on, off) in pairs.items():
        if throughput.get(on) and throughput.get(off):
            speedups[key] = throughput[on] / throughput[off]
    return throughput, speedups


def compare(baseline_path, speedups, gate):
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError as e:
        raise BenchError("cannot read baseline: %s" % e)
    except json.JSONDecodeError as e:
        raise BenchError("baseline %s is not valid JSON: %s"
                         % (baseline_path, e))
    if not isinstance(baseline, dict):
        raise BenchError("baseline %s is not a JSON object" % baseline_path)
    failures = []
    for scenario, base_speedup in sorted(baseline.get("speedups", {}).items()):
        new = speedups.get(scenario)
        if new is None:
            failures.append("scenario %s missing from this run" % scenario)
            continue
        floor = base_speedup / gate
        status = "ok" if new >= floor else "REGRESSION"
        print("  %-24s baseline %6.2fx  now %6.2fx  floor %6.2fx  %s"
              % (scenario, base_speedup, new, floor, status))
        if new < floor:
            failures.append(
                "%s: speedup %.2fx fell below %.2fx (baseline %.2fx / gate %g)"
                % (scenario, new, floor, base_speedup, gate))
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--suite", choices=sorted(SUITES), default="decay-stress",
                    help="which recording to produce (default decay-stress)")
    ap.add_argument("--bench", default="build/bench/bench_micro",
                    help="path to the bench_micro binary")
    ap.add_argument("--out", default=None,
                    help="output JSON path (default: the suite's BENCH_N.json)")
    ap.add_argument("--baseline", default=None,
                    help="committed BENCH_N.json to gate against")
    ap.add_argument("--gate", type=float, default=2.0,
                    help="allowed speedup regression factor (default 2x)")
    ap.add_argument("--min-speedup", type=float, default=None,
                    help="absolute floor every recorded speedup must clear")
    ap.add_argument("--min-time", type=float, default=0.5,
                    help="benchmark_min_time per scenario, seconds")
    ap.add_argument("--allow-dirty", action="store_true",
                    help="record despite uncommitted changes (the baseline "
                         "then carries \"git_dirty\": true)")
    args = ap.parse_args()

    suite = SUITES[args.suite]
    out_path = args.out if args.out is not None else suite["out"]
    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    git_rev, git_dirty = git_state(repo_root)
    if git_dirty:
        print("record_bench: WARNING: work tree has uncommitted changes; "
              "the recorded numbers are not attributable to commit %s"
              % git_rev, file=sys.stderr)
        if not args.allow_dirty:
            print("record_bench: refusing to record from a dirty tree "
                  "(commit first, or pass --allow-dirty)", file=sys.stderr)
            return 1
    # The sweep pair runs whole seconds per iteration: repeat each arm and
    # interleave the repetitions so slow drift on a shared host lands on
    # both arms instead of skewing their ratio.
    extra = (("--benchmark_repetitions=5",
              "--benchmark_enable_random_interleaving=true")
             if args.suite in ("sweep", "trace") else ())
    try:
        doc = run_bench(args.bench, suite["filter"], args.min_time, extra)
    except BenchError as e:
        print("record_bench: %s" % e, file=sys.stderr)
        return 1
    if args.suite == "sweep":
        throughput, speedups = extract_sweep(doc)
        rate_key = "sweeps_per_sec"
        ratio_label = "batched/scalar sweep"
    elif args.suite == "trace":
        throughput, speedups = extract_trace(doc)
        rate_key = "sweeps_per_sec"
        ratio_label = "arena/live trace"
    else:
        throughput, speedups = extract(doc)
        rate_key = "accesses_per_sec"
        ratio_label = "event/reference"
    if not throughput:
        print("record_bench: no %s rows in the bench output" % suite["filter"],
              file=sys.stderr)
        return 1

    out = {
        "schema": 1,
        "suite": args.suite,
        "git": git_rev,
        "git_dirty": git_dirty,
        "config_hash": fnv1a("\n".join(sorted(throughput))),
        "scenarios": [
            {"name": name, rate_key: round(rate, 4)}
            for name, rate in sorted(throughput.items())
        ],
        "speedups": {k: round(v, 3) for k, v in sorted(speedups.items())},
    }
    try:
        with open(out_path, "w") as f:
            json.dump(out, f, indent=2, sort_keys=True)
            f.write("\n")
    except OSError as e:
        print("record_bench: cannot write %s: %s" % (out_path, e),
              file=sys.stderr)
        return 1
    print("wrote %s (%d scenarios, git %s)"
          % (out_path, len(out["scenarios"]), out["git"]))
    for scenario, ratio in sorted(speedups.items()):
        print("  %-24s %s speedup %.2fx" % (scenario, ratio_label, ratio))

    failures = []
    if args.min_speedup is not None:
        for scenario, ratio in sorted(speedups.items()):
            if ratio < args.min_speedup:
                failures.append(
                    "%s: speedup %.2fx is below the required %.2fx floor"
                    % (scenario, ratio, args.min_speedup))
        if not speedups:
            failures.append("--min-speedup given but no speedups measured")
    if args.baseline:
        print("gating against %s (%.gx regression allowance):"
              % (args.baseline, args.gate))
        try:
            failures += compare(args.baseline, speedups, args.gate)
        except BenchError as e:
            print("record_bench: %s" % e, file=sys.stderr)
            return 1
    if failures:
        for f in failures:
            print("record_bench: " + f, file=sys.stderr)
        return 1
    if args.baseline or args.min_speedup is not None:
        print("gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
