#!/usr/bin/env python3
"""Record the decay-stress micro-benchmark suite into BENCH_5.json.

Runs ``bench_micro --benchmark_filter=BM_DecayStress --json`` (the schema-1
report whose ``micro`` section carries the per-benchmark rows), converts
each row to accesses/second, and writes a small machine-readable summary:

    {
      "schema": 1,
      "suite": "decay-stress",
      "git": "<git describe --always --dirty>",
      "config_hash": "<fnv1a of the scenario names>",
      "scenarios": [{"name": ..., "accesses_per_sec": ...}, ...],
      "speedups": {"interval:512/kb:64": 6.9, ...}   # event vs reference
    }

``--baseline BENCH_5.json`` additionally compares the freshly measured
event-vs-reference *speedups* (machine-independent, unlike raw
throughput) against the committed baseline with a generous regression
gate (default 2x) and exits nonzero on a regression.

CI usage (see .github/workflows/ci.yml):
    python3 scripts/record_bench.py --bench ./build/bench/bench_micro \
        --out BENCH_5.ci.json --baseline BENCH_5.json --gate 2.0
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

UNIT_TO_SECONDS = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
STRESS_ROW = re.compile(r"^BM_DecayStress/(?P<scenario>.+)/event:(?P<event>[01])$")


def fnv1a(text):
    h = 0xCBF29CE484222325
    for b in text.encode():
        h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return "%016x" % h


def git_describe(repo_root):
    try:
        return subprocess.check_output(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=repo_root, text=True, stderr=subprocess.DEVNULL).strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


class BenchError(Exception):
    """A benchmark run that cannot produce a usable report."""


def run_bench(bench, min_time):
    if not os.path.exists(bench):
        raise BenchError(
            "bench binary not found: %s (build it, or point --bench at it)"
            % bench)
    if not os.access(bench, os.X_OK):
        raise BenchError("bench binary is not executable: %s" % bench)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    env = dict(os.environ)
    # The --json export also runs the quick drowsy/gated suite; keep it
    # short — only the micro rows feed this recording.
    env.setdefault("HLCC_INSTRUCTIONS", "60000")
    env.setdefault("HLCC_PROGRESS", "0")
    cmd = [bench,
           "--benchmark_filter=BM_DecayStress",
           "--benchmark_min_time=%g" % min_time,
           "--json", tmp_path]
    try:
        try:
            subprocess.check_call(cmd, env=env, stdout=subprocess.DEVNULL)
        except OSError as e:
            raise BenchError("cannot run %s: %s" % (bench, e))
        except subprocess.CalledProcessError as e:
            raise BenchError("%s exited with status %d" % (bench, e.returncode))
        try:
            with open(tmp_path) as f:
                doc = json.load(f)
        except json.JSONDecodeError as e:
            raise BenchError("%s wrote invalid JSON: %s" % (bench, e))
        except OSError as e:
            raise BenchError("cannot read bench report: %s" % e)
    finally:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
    if not isinstance(doc, dict):
        raise BenchError("%s wrote a non-object JSON report" % bench)
    return doc


def extract(doc):
    """micro rows -> ({row name: accesses/sec}, {scenario: speedup})."""
    throughput = {}
    for row in doc.get("micro", []):
        m = STRESS_ROW.match(row["name"])
        if not m:
            continue
        per_iter = row["real_time"] * UNIT_TO_SECONDS[row["time_unit"]]
        if per_iter <= 0:
            continue
        throughput[row["name"]] = 1.0 / per_iter  # one access per iteration
    speedups = {}
    for name, aps in throughput.items():
        m = STRESS_ROW.match(name)
        if m.group("event") != "1":
            continue
        ref = throughput.get("BM_DecayStress/%s/event:0" % m.group("scenario"))
        if ref:
            speedups[m.group("scenario")] = aps / ref
    return throughput, speedups


def compare(baseline_path, speedups, gate):
    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except OSError as e:
        raise BenchError("cannot read baseline: %s" % e)
    except json.JSONDecodeError as e:
        raise BenchError("baseline %s is not valid JSON: %s"
                         % (baseline_path, e))
    if not isinstance(baseline, dict):
        raise BenchError("baseline %s is not a JSON object" % baseline_path)
    failures = []
    for scenario, base_speedup in sorted(baseline.get("speedups", {}).items()):
        new = speedups.get(scenario)
        if new is None:
            failures.append("scenario %s missing from this run" % scenario)
            continue
        floor = base_speedup / gate
        status = "ok" if new >= floor else "REGRESSION"
        print("  %-24s baseline %6.2fx  now %6.2fx  floor %6.2fx  %s"
              % (scenario, base_speedup, new, floor, status))
        if new < floor:
            failures.append(
                "%s: speedup %.2fx fell below %.2fx (baseline %.2fx / gate %g)"
                % (scenario, new, floor, base_speedup, gate))
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--bench", default="build/bench/bench_micro",
                    help="path to the bench_micro binary")
    ap.add_argument("--out", default="BENCH_5.json",
                    help="output JSON path")
    ap.add_argument("--baseline", default=None,
                    help="committed BENCH_5.json to gate against")
    ap.add_argument("--gate", type=float, default=2.0,
                    help="allowed speedup regression factor (default 2x)")
    ap.add_argument("--min-time", type=float, default=0.5,
                    help="benchmark_min_time per scenario, seconds")
    args = ap.parse_args()

    repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    try:
        doc = run_bench(args.bench, args.min_time)
    except BenchError as e:
        print("record_bench: %s" % e, file=sys.stderr)
        return 1
    throughput, speedups = extract(doc)
    if not throughput:
        print("record_bench: no BM_DecayStress rows in the bench output",
              file=sys.stderr)
        return 1

    out = {
        "schema": 1,
        "suite": "decay-stress",
        "git": git_describe(repo_root),
        "config_hash": fnv1a("\n".join(sorted(throughput))),
        "scenarios": [
            {"name": name, "accesses_per_sec": round(aps, 1)}
            for name, aps in sorted(throughput.items())
        ],
        "speedups": {k: round(v, 3) for k, v in sorted(speedups.items())},
    }
    try:
        with open(args.out, "w") as f:
            json.dump(out, f, indent=2, sort_keys=True)
            f.write("\n")
    except OSError as e:
        print("record_bench: cannot write %s: %s" % (args.out, e),
              file=sys.stderr)
        return 1
    print("wrote %s (%d scenarios, git %s)"
          % (args.out, len(out["scenarios"]), out["git"]))
    for scenario, ratio in sorted(speedups.items()):
        print("  %-24s event/reference speedup %.2fx" % (scenario, ratio))

    if args.baseline:
        print("gating against %s (%.gx regression allowance):"
              % (args.baseline, args.gate))
        try:
            failures = compare(args.baseline, speedups, args.gate)
        except BenchError as e:
            print("record_bench: %s" % e, file=sys.stderr)
            return 1
        if failures:
            for f in failures:
                print("record_bench: " + f, file=sys.stderr)
            return 1
        print("gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
