#!/usr/bin/env python3
"""Diff two --json suite reports on their deterministic payload.

Usage: diff_reports.py CLEAN.json RESUMED.json

The resilience contract (DESIGN.md "Sweep resilience") is that a sweep
killed mid-run and resumed from its checkpoint journal produces results
bit-identical to an uninterrupted run.  This script enforces exactly
that: it compares every simulated quantity of every benchmark row —
energy breakdown, run stats, control stats, config hash — and fails on
the first difference, while masking the fields that legitimately differ
between the two runs:

  - metadata (git describe, thread counts, timestamps of the runner)
  - metrics (wall-clock timers, throughput gauges, retry/resume counters)
  - each row's cell.duration_s / cell.resumed / cell.attempts (execution
    history, not simulation output)
  - each series' cells.resumed / cells.retried rollup counts

Stdlib only.  Exits 0 when the payloads match, 1 with a path-qualified
message when they do not, 2 on usage/IO errors.
"""

import json
import sys

# Execution-history fields: legitimately run-dependent.
VOLATILE_CELL_FIELDS = {"duration_s", "resumed", "attempts", "batch"}
VOLATILE_ROLLUP_FIELDS = {"resumed", "retried"}
VOLATILE_TOP_LEVEL = {"metadata", "metrics"}


def strip_volatile(doc):
    """Return a copy of a suite report with run-dependent fields removed."""
    if not isinstance(doc, dict):
        raise ValueError("report top level must be an object")
    out = {k: v for k, v in doc.items() if k not in VOLATILE_TOP_LEVEL}
    for series in out.get("series", []):
        cells = series.get("cells")
        if isinstance(cells, dict):
            for key in VOLATILE_ROLLUP_FIELDS:
                cells.pop(key, None)
        for row in series.get("benchmarks", []):
            cell = row.get("cell")
            if isinstance(cell, dict):
                for key in VOLATILE_CELL_FIELDS:
                    cell.pop(key, None)
    return out


def first_difference(a, b, path="$"):
    """Depth-first search for the first mismatch; None when equal."""
    if type(a) is not type(b):
        return "%s: type %s != %s" % (path, type(a).__name__,
                                      type(b).__name__)
    if isinstance(a, dict):
        for key in a:
            if key not in b:
                return "%s: key %r only in first report" % (path, key)
        for key in b:
            if key not in a:
                return "%s: key %r only in second report" % (path, key)
        for key in a:
            diff = first_difference(a[key], b[key], "%s.%s" % (path, key))
            if diff:
                return diff
        return None
    if isinstance(a, list):
        if len(a) != len(b):
            return "%s: length %d != %d" % (path, len(a), len(b))
        for i, (x, y) in enumerate(zip(a, b)):
            diff = first_difference(x, y, "%s[%d]" % (path, i))
            if diff:
                return diff
        return None
    # Scalars: exact equality, floats included — the JSON writer emits
    # shortest-round-trip doubles, so bit-identical runs compare equal.
    if a != b:
        return "%s: %r != %r" % (path, a, b)
    return None


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        print("diff_reports: cannot read %s: %s" % (path, e),
              file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        print("diff_reports: %s is not valid JSON: %s" % (path, e),
              file=sys.stderr)
        sys.exit(2)


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    a_path, b_path = argv[1], argv[2]
    try:
        a = strip_volatile(load(a_path))
        b = strip_volatile(load(b_path))
    except ValueError as e:
        print("diff_reports: %s" % e, file=sys.stderr)
        return 2
    diff = first_difference(a, b)
    if diff:
        print("reports differ: %s" % diff, file=sys.stderr)
        print("  first:  %s" % a_path, file=sys.stderr)
        print("  second: %s" % b_path, file=sys.stderr)
        return 1
    print("reports match on the deterministic payload: %s == %s"
          % (a_path, b_path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
