// Table 2: simulated processor configuration, echoed from the live config
// structures plus a baseline sanity run of every benchmark (IPC, miss
// rates, branch misprediction) on that machine.
#include <cstdio>

#include "bench/common.h"
#include "sim/processor.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  const sim::ProcessorConfig cfg = sim::ProcessorConfig::table2(11);
  std::printf("== Table 2: simulated processor microarchitecture ==\n");
  std::printf("Instruction window   %u-RUU, %u-LSQ\n", cfg.core.ruu_size,
              cfg.core.lsq_size);
  std::printf("Issue width          %u instructions per cycle\n",
              cfg.core.issue_width);
  std::printf("Functional units     %u IntALU, %u IntMult/Div, %u FPALU, "
              "%u FPMult/Div, %u mem ports\n",
              cfg.core.int_alu, cfg.core.int_multdiv, cfg.core.fp_alu,
              cfg.core.fp_multdiv, cfg.core.mem_ports);
  std::printf("L1 D-cache           %zu KB, %zu-way LRU, %zu B blocks, "
              "%u-cycle latency\n",
              cfg.l1d.size_bytes / 1024, cfg.l1d.assoc, cfg.l1d.line_bytes,
              cfg.l1d.hit_latency);
  std::printf("L1 I-cache           %zu KB, %zu-way LRU, %zu B blocks, "
              "%u-cycle latency\n",
              cfg.l1i.size_bytes / 1024, cfg.l1i.assoc, cfg.l1i.line_bytes,
              cfg.l1i.hit_latency);
  std::printf("L2                   unified, %zu MB, %zu-way LRU, %zu B "
              "blocks, %u-cycle latency\n",
              cfg.l2.size_bytes / (1024 * 1024), cfg.l2.assoc,
              cfg.l2.line_bytes, cfg.l2.hit_latency);
  std::printf("Memory               %u cycles\n", cfg.memory_latency);
  std::printf("Branch predictor     hybrid: 4K bimod + 4K/12-bit GAg + 4K "
              "chooser; 1K-entry 2-way BTB\n");
  std::printf("Technology           70 nm, %.1f V, %.0f MHz\n\n", 0.9,
              cfg.clock_hz / 1e6);

  const uint64_t insts = bench::instructions();
  std::printf("baseline sanity run (%llu instructions/benchmark):\n",
              static_cast<unsigned long long>(insts));
  std::printf("%-10s %6s %10s %10s %10s\n", "benchmark", "IPC", "L1D miss",
              "L1I miss", "br mispred");
  struct Row {
    double ipc, l1d_miss, l1i_miss, mispredict;
  };
  const auto& profiles = workload::spec2000_profiles();
  harness::SweepRunner runner(bench::sweep_options("table2"));
  const auto rows = harness::values(
      runner.run(profiles, [&](const workload::BenchmarkProfile& prof) {
        sim::Processor proc(cfg);
        sim::BaselineDataPort dport(cfg.l1d, proc.l2(), &proc.activity());
        workload::Generator gen(prof, 1);
        const sim::RunStats st = proc.run(gen, dport, insts);
        return Row{st.ipc(), dport.cache().stats().miss_rate(),
                   proc.iport().cache().stats().miss_rate(),
                   st.branch.mispredict_rate()};
      }));
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    std::printf("%-10s %6.2f %9.2f%% %9.2f%% %9.2f%%\n",
                profiles[i].name.data(), rows[i].ipc,
                rows[i].l1d_miss * 100.0, rows[i].l1i_miss * 100.0,
                rows[i].mispredict * 100.0);
  }
  bench::write_reports(report, "table2: machine config + baseline sanity");
  return 0;
}
