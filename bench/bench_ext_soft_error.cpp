// Extension: soft errors in standby — the reliability price of
// state preservation.
//
// The paper's drowsy-vs-gated comparison assumes a drowsy line at ~1.5x Vt
// actually keeps its data.  At that supply the cell's critical charge has
// collapsed and the upset rate is exponentially higher (the
// hotleakage::cells::sram_seu_scale hook), so "state preserving" needs
// parity or ECC to be a guarantee rather than a tendency.  This sweep runs
// the suite under both techniques and all three protection schemes and
// reports the figure the paper cannot: net savings *under a reliability
// constraint* (zero data corruptions).
#include <iostream>

#include "bench/common.h"

namespace {

const char* protection_name(faults::Protection p) {
  switch (p) {
  case faults::Protection::none:
    return "none";
  case faults::Protection::parity:
    return "parity";
  case faults::Protection::secded:
    return "secded";
  }
  return "?";
}

struct Cell {
  std::string label;
  harness::SuiteAverages avg;
  unsigned long long injected = 0;
  unsigned long long corruptions = 0;
};

} // namespace

int main() {
  harness::ExperimentConfig cfg = bench::base_config(11, 110.0);
  cfg.faults.enabled = true;
  cfg.faults.standby_rate_per_bit_cycle = 1e-10; // raw, at nominal Vdd/300 K
  cfg.faults.seed = 7;

  std::vector<Cell> cells;
  std::vector<harness::Series> detail;
  for (const leakctl::TechniqueParams& tech :
       {leakctl::TechniqueParams::drowsy(),
        leakctl::TechniqueParams::gated_vss()}) {
    for (const faults::Protection prot :
         {faults::Protection::none, faults::Protection::parity,
          faults::Protection::secded}) {
      cfg.technique = tech;
      cfg.faults.protection = prot;
      Cell cell;
      cell.label =
          std::string(tech.name) + " + " + protection_name(prot);
      harness::Series series{cell.label, harness::run_suite(cfg)};
      cell.avg = harness::averages(series.results);
      for (const harness::ExperimentResult& r : series.results) {
        cell.injected += r.control.faults_injected;
        cell.corruptions += r.control.corruptions();
      }
      cells.push_back(cell);
      detail.push_back(std::move(series));
    }
  }

  harness::print_reliability_table(
      std::cout, "Extension: standby soft errors (70nm, 110C, L2=11)",
      detail);

  std::printf("== suite summary ==\n");
  std::printf("%-22s %9s %9s %8s %8s %10s\n", "configuration", "injected",
              "corrupt", "net%", "perf%", "reliable?");
  for (const Cell& c : cells) {
    std::printf("%-22s %9llu %9llu %7.1f%% %7.2f%% %10s\n", c.label.c_str(),
                c.injected, c.corruptions, c.avg.net_savings * 100.0,
                c.avg.perf_loss * 100.0,
                c.corruptions == 0 ? "yes" : "NO");
  }

  const Cell* best = nullptr;
  for (const Cell& c : cells) {
    if (c.corruptions == 0 &&
        (best == nullptr || c.avg.net_savings > best->avg.net_savings)) {
      best = &c;
    }
  }
  if (best != nullptr) {
    std::printf("\nbest reliable configuration: %s (%.1f%% net savings)\n",
                best->label.c_str(), best->avg.net_savings * 100.0);
  }
  // cells[] is drowsy x {none,parity,secded} then gated x {...}.
  if (cells[2].corruptions > 0 && cells[0].corruptions > 0) {
    std::printf("\nGated-Vss is immune by construction (no standby state). "
                "SECDED cuts drowsy corruption %.0fx (%llu -> %llu) but "
                "cannot zero it: long standby spans still accumulate "
                "double-bit words.\n",
                static_cast<double>(cells[0].corruptions) /
                    static_cast<double>(cells[2].corruptions),
                cells[0].corruptions, cells[2].corruptions);
  } else {
    std::printf("\nGated-Vss is immune by construction (no standby state); "
                "at this rate SECDED holds drowsy at zero corruptions.\n");
  }
  return 0;
}
