// Extension: soft errors in standby — the reliability price of
// state preservation.
//
// The paper's drowsy-vs-gated comparison assumes a drowsy line at ~1.5x Vt
// actually keeps its data.  At that supply the cell's critical charge has
// collapsed and the upset rate is exponentially higher (the
// hotleakage::cells::sram_seu_scale hook), so "state preserving" needs
// parity or ECC to be a guarantee rather than a tendency.  This sweep runs
// the suite under both techniques and all three protection schemes — one
// flat 66-cell sweep — and reports the figure the paper cannot: net
// savings *under a reliability constraint* (zero data corruptions).
#include <iostream>

#include "bench/common.h"

namespace {

const char* protection_name(faults::Protection p) {
  switch (p) {
  case faults::Protection::none:
    return "none";
  case faults::Protection::parity:
    return "parity";
  case faults::Protection::secded:
    return "secded";
  }
  return "?";
}

struct Cell {
  std::string label;
  harness::SuiteResult suite;
  unsigned long long injected = 0;
  unsigned long long corruptions = 0;
};

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  faults::FaultConfig fault_base;
  fault_base.enabled = true;
  fault_base.standby_rate_per_bit_cycle = 1e-10; // raw, at nominal Vdd/300 K
  fault_base.seed = 7;

  // Submit all technique x protection suites into one runner.
  harness::SweepRunner runner(bench::sweep_options("ext-soft-error"));
  std::vector<std::string> labels;
  for (const leakctl::TechniqueParams& tech :
       {leakctl::TechniqueParams::drowsy(),
        leakctl::TechniqueParams::gated_vss()}) {
    for (const faults::Protection prot :
         {faults::Protection::none, faults::Protection::parity,
          faults::Protection::secded}) {
      faults::FaultConfig fcfg = fault_base;
      fcfg.protection = prot;
      const harness::ExperimentConfig cfg = bench::base_builder(11, 110.0)
                                                .technique(tech)
                                                .faults(fcfg)
                                                .build();
      for (const auto& prof : workload::spec2000_profiles()) {
        runner.submit(prof, cfg);
      }
      labels.push_back(std::string(tech.name) + " + " +
                       protection_name(prot));
    }
  }
  std::vector<harness::ExperimentResult> all =
      harness::values(runner.run(), runner.options().fail_fast);

  const std::size_t n = workload::spec2000_profiles().size();
  std::vector<Cell> cells;
  std::vector<harness::Series> detail;
  for (std::size_t block = 0; block < labels.size(); ++block) {
    Cell cell;
    cell.label = labels[block];
    cell.suite = harness::SuiteResult(std::vector<harness::ExperimentResult>(
        all.begin() + static_cast<std::ptrdiff_t>(block * n),
        all.begin() + static_cast<std::ptrdiff_t>((block + 1) * n)));
    for (const harness::ExperimentResult& r : cell.suite) {
      cell.injected += r.control.faults_injected;
      cell.corruptions += r.control.corruptions();
    }
    detail.push_back(harness::Series{cell.label, cell.suite});
    cells.push_back(std::move(cell));
  }

  harness::print_reliability_table(
      std::cout, "Extension: standby soft errors (70nm, 110C, L2=11)",
      detail);

  std::printf("== suite summary ==\n");
  std::printf("%-22s %9s %9s %8s %8s %10s\n", "configuration", "injected",
              "corrupt", "net%", "perf%", "reliable?");
  for (const Cell& c : cells) {
    std::printf("%-22s %9llu %9llu %7.1f%% %7.2f%% %10s\n", c.label.c_str(),
                c.injected, c.corruptions,
                c.suite.mean_net_savings() * 100.0,
                c.suite.mean_slowdown() * 100.0,
                c.corruptions == 0 ? "yes" : "NO");
  }

  const Cell* best = nullptr;
  for (const Cell& c : cells) {
    if (c.corruptions == 0 &&
        (best == nullptr ||
         c.suite.mean_net_savings() > best->suite.mean_net_savings())) {
      best = &c;
    }
  }
  if (best != nullptr) {
    std::printf("\nbest reliable configuration: %s (%.1f%% net savings)\n",
                best->label.c_str(), best->suite.mean_net_savings() * 100.0);
  }
  // cells[] is drowsy x {none,parity,secded} then gated x {...}.
  if (cells[2].corruptions > 0 && cells[0].corruptions > 0) {
    std::printf("\nGated-Vss is immune by construction (no standby state). "
                "SECDED cuts drowsy corruption %.0fx (%llu -> %llu) but "
                "cannot zero it: long standby spans still accumulate "
                "double-bit words.\n",
                static_cast<double>(cells[0].corruptions) /
                    static_cast<double>(cells[2].corruptions),
                cells[0].corruptions, cells[2].corruptions);
  } else {
    std::printf("\nGated-Vss is immune by construction (no standby state); "
                "at this rate SECDED holds drowsy at zero corruptions.\n");
  }
  bench::write_reports(report, "ext: standby soft errors", detail);
  return 0;
}
