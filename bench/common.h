// Shared plumbing for the figure/table regeneration binaries.
//
// Each bench binary regenerates one table or figure from the paper.  All
// of them run on the harness::SweepRunner engine: independent
// (benchmark, config) cells fan out across HLCC_THREADS workers (default:
// all cores) with a live progress/ETA line on stderr.  The default run
// length keeps the whole `for b in build/bench/*` sweep short; set
// HLCC_INSTRUCTIONS to raise fidelity (the paper simulated 500 M
// committed instructions per benchmark).
#pragma once

// Machine-readable results: every bench binary accepts
//   --json <path>   full suite report (schema 2; also via HLCC_JSON env)
//   --csv <path>    per-benchmark rows
// parsed by parse_cli below and emitted through harness::write_reports.
//
// Resilience knobs (all environment-driven, resolved by the engine):
//   HLCC_RESUME=<journal>   checkpoint each cell to <journal> and skip
//                           cells already completed there (kill/resume)
//   HLCC_CELL_TIMEOUT=<s>   per-cell cooperative watchdog budget
//   HLCC_RETRIES=<n>        attempt budget for transiently failing cells
//   HLCC_FAIL_FAST=0        degrade gracefully on cell failures instead
//                           of aborting the sweep (see sweep_options)
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <utility>

#include "harness/env.h"
#include "harness/experiment.h"
#include "harness/report.h"
#include "harness/report_json.h"
#include "harness/sweep.h"

namespace bench {

/// Strip --json/--csv from argv (exiting with a usage error on a missing
/// path) and resolve the HLCC_JSON default.  Call first in every main().
inline harness::ReportOptions parse_cli(int& argc, char** argv) {
  try {
    return harness::parse_report_cli(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    std::fprintf(stderr, "usage: %s [--json <path>] [--csv <path>]\n",
                 argv[0]);
    std::exit(2);
  }
}

/// Emit the requested reports for a figure/table run.  Benches whose
/// output is not a Series grid pass {} and still export run metadata and
/// the metrics registry (phase timings, sweep throughput).
inline void write_reports(const harness::ReportOptions& opts,
                          const std::string& title,
                          const std::vector<harness::Series>& series = {}) {
  try {
    harness::write_reports(opts, title, series);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "report export failed: %s\n", e.what());
    std::exit(1);
  }
}

/// Instructions per run: HLCC_INSTRUCTIONS env var or the default.
/// Strictly parsed (harness/env.h): "60000x" was silently accepted as
/// 60000 by the old strtoull loop; now it is a usage error.
inline uint64_t instructions(uint64_t fallback = 600'000) {
  try {
    return harness::env::positive_u64("HLCC_INSTRUCTIONS",
                                      "positive instruction count")
        .value_or(fallback);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
}

/// Engine options for a bench sweep: default thread count, progress on.
/// HLCC_FAIL_FAST=0 switches the sweep to graceful degradation — failed
/// cells become placeholder rows whose schema-2 "cell" record carries
/// the error, and every other cell's result is still produced (the
/// series' cells.complete flag flips to false).  Any other value (or
/// unset) keeps the abort-on-first-error default; junk is rejected.
inline harness::SweepOptions sweep_options(std::string label) {
  harness::SweepOptions opts;
  opts.progress = true;
  opts.label = std::move(label);
  try {
    opts.fail_fast = harness::env::flag01("HLCC_FAIL_FAST").value_or(true);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    std::exit(2);
  }
  return opts;
}

/// Baseline experiment builder shared by the figure benches; chain
/// further setters before passing it to the harness.
inline harness::ExperimentConfig::Builder base_builder(unsigned l2_latency,
                                                       double temperature_c) {
  return harness::ExperimentConfig::make()
      .l2_latency(l2_latency)
      .temperature(temperature_c)
      .instructions(instructions());
}

/// Baseline experiment config shared by the figure benches.
inline harness::ExperimentConfig base_config(unsigned l2_latency,
                                             double temperature_c) {
  return base_builder(l2_latency, temperature_c).build();
}

/// Run drowsy + gated suites for one configuration as a single 22-cell
/// sweep (both techniques' cells share one pool and one baseline cache).
inline std::pair<harness::Series, harness::Series>
run_both(harness::ExperimentConfig cfg, const std::string& label = "bench") {
  harness::SweepRunner runner(sweep_options(label));
  cfg.technique = leakctl::TechniqueParams::drowsy();
  for (const workload::BenchmarkProfile& p : workload::spec2000_profiles()) {
    runner.submit(p, cfg);
  }
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  for (const workload::BenchmarkProfile& p : workload::spec2000_profiles()) {
    runner.submit(p, cfg);
  }
  std::vector<harness::ExperimentResult> all =
      harness::values(runner.run(), runner.options().fail_fast);
  const std::size_t n = all.size() / 2;
  harness::Series drowsy{"drowsy", {}};
  harness::Series gated{"gated-vss", {}};
  for (std::size_t i = 0; i < n; ++i) {
    drowsy.results.push_back(std::move(all[i]));
  }
  for (std::size_t i = n; i < all.size(); ++i) {
    gated.results.push_back(std::move(all[i]));
  }
  return {std::move(drowsy), std::move(gated)};
}

} // namespace bench
