// Shared plumbing for the figure/table regeneration binaries.
//
// Each bench binary regenerates one table or figure from the paper.  The
// default run length keeps the whole `for b in build/bench/*` sweep under a
// few minutes; set HLCC_INSTRUCTIONS to raise fidelity (the paper simulated
// 500 M committed instructions per benchmark).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

#include "harness/experiment.h"
#include "harness/report.h"

namespace bench {

/// Instructions per run: HLCC_INSTRUCTIONS env var or the default.
inline uint64_t instructions(uint64_t fallback = 600'000) {
  if (const char* env = std::getenv("HLCC_INSTRUCTIONS")) {
    const unsigned long long v = std::strtoull(env, nullptr, 10);
    if (v > 0) {
      return v;
    }
  }
  return fallback;
}

/// Baseline experiment config shared by the figure benches.
inline harness::ExperimentConfig base_config(unsigned l2_latency,
                                             double temperature_c) {
  harness::ExperimentConfig cfg;
  cfg.l2_latency = l2_latency;
  cfg.temperature_c = temperature_c;
  cfg.instructions = instructions();
  return cfg;
}

/// Run drowsy + gated suites for one configuration.
inline std::pair<harness::Series, harness::Series>
run_both(harness::ExperimentConfig cfg) {
  cfg.technique = leakctl::TechniqueParams::drowsy();
  harness::Series drowsy{"drowsy", harness::run_suite(cfg)};
  cfg.technique = leakctl::TechniqueParams::gated_vss();
  harness::Series gated{"gated-vss", harness::run_suite(cfg)};
  return {std::move(drowsy), std::move(gated)};
}

} // namespace bench
