// Figures 10 and 11: net leakage savings (110 C) and performance loss at a
// 17-cycle L2 — the regime where the state-preserving nature of drowsy
// becomes a clear advantage.
#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  auto [drowsy, gated] = bench::run_both(bench::base_config(17, 110.0), "fig10-11");
  harness::print_savings_figure(
      std::cout, "Figure 10: net leakage savings @110C, L2=17 cycles",
      {drowsy, gated});
  harness::print_perf_figure(
      std::cout, "Figure 11: performance loss, L2=17 cycles",
      {drowsy, gated});
  bench::write_reports(report, "fig10-11: 110C, L2=17", {drowsy, gated});
  return 0;
}
