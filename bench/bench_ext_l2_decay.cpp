// Extension: cache decay applied to the unified L2.
//
// Kaxiras et al.'s cache-decay paper covers L2 caches too: L2 lines live
// far longer than L1 lines, so much longer decay intervals apply, but the
// 2 MB array's leakage (an order of magnitude above the L1's) makes the
// absolute stakes much larger.  This bench runs the whole machine with a
// gated-Vss L2 (the BackingStore abstraction lets the controlled cache
// stack at any level) and reports turnoff, performance, and the gross L2
// leakage reclaimed.  The benchmark x interval grid runs through
// harness::SweepRunner::run.
#include <cstdio>

#include "bench/common.h"
#include "leakctl/controlled_cache.h"
#include "workload/generator.h"

namespace {

struct Row {
  double perf_loss = 0.0;
  double turnoff = 0.0;
  unsigned long long induced = 0;
};

Row run(const workload::BenchmarkProfile& prof, uint64_t interval,
        uint64_t insts) {
  const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);

  // Baseline machine.
  sim::Processor base(pcfg);
  sim::BaselineDataPort base_d(pcfg.l1d, base.l2(), nullptr);
  workload::Generator gen_a(prof, 1);
  const sim::RunStats base_run = base.run(gen_a, base_d, insts);

  // Machine with a gated-Vss L2 between the L1s and memory.
  wattch::Activity act;
  sim::MemoryBackend memory(pcfg.memory_latency, &act);
  leakctl::ControlledCacheConfig l2cfg;
  l2cfg.cache = pcfg.l2;
  l2cfg.technique = leakctl::TechniqueParams::gated_vss();
  l2cfg.decay_interval = interval;
  leakctl::ControlledCache l2ctl(l2cfg, memory, nullptr);
  sim::BaselineDataPort dport(pcfg.l1d, l2ctl, &act);
  sim::InstrPort iport(pcfg.l1i, l2ctl, &act);
  sim::OooCore core(pcfg.core, dport, iport, &act);
  workload::Generator gen_b(prof, 1);
  const sim::RunStats run = core.run(gen_b, insts);
  l2ctl.finalize(run.cycles);

  Row row;
  row.perf_loss = base_run.cycles
                      ? (static_cast<double>(run.cycles) -
                         static_cast<double>(base_run.cycles)) /
                            static_cast<double>(base_run.cycles)
                      : 0.0;
  row.turnoff = l2ctl.stats().turnoff_ratio();
  row.induced = l2ctl.stats().induced_misses;
  return row;
}

struct Cell {
  workload::BenchmarkProfile profile;
  uint64_t interval = 0;
};

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  const uint64_t insts = bench::instructions();
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70);
  model.set_operating_point(hotleakage::OperatingPoint::at_celsius(110, 0.9));
  const double gated_residual =
      model.standby_ratio(hotleakage::StandbyMode::gated);
  const std::vector<uint64_t> intervals = {65536, 262144, 1048576};

  std::vector<Cell> cells;
  for (const auto& prof : workload::spec2000_profiles()) {
    for (const uint64_t interval : intervals) {
      cells.push_back({prof, interval});
    }
  }
  harness::SweepRunner runner(bench::sweep_options("ext-l2"));
  const std::vector<Row> rows = harness::values(runner.run(
      cells, [&](const Cell& c) { return run(c.profile, c.interval, insts); }));

  std::printf("== Extension: gated-Vss decay on the 2 MB L2 (110C) ==\n");
  std::printf("%-10s %9s | %8s %7s %8s %11s\n", "benchmark", "interval",
              "turnoff", "loss", "induced", "gross save");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Row& r = rows[i];
    const double save = r.turnoff * (1.0 - gated_residual);
    const bool first = i % intervals.size() == 0;
    std::printf("%-10s %8lluk | %7.1f%% %6.2f%% %8llu %10.1f%%\n",
                first ? cells[i].profile.name.data() : "",
                static_cast<unsigned long long>(cells[i].interval / 1024),
                r.turnoff * 100.0, r.perf_loss * 100.0, r.induced,
                save * 100.0);
  }
  std::printf("(gross save: fraction of L2 leakage reclaimed; the 2 MB L2 "
              "leaks ~%.1f W at 110 C, an order above the L1)\n",
              model.structure_power(hotleakage::CacheGeometry{
                  .lines = 32768, .line_bytes = 64, .tag_bits = 17,
                  .assoc = 2}));
  bench::write_reports(report, "ext: gated-Vss L2 decay");
  return 0;
}
