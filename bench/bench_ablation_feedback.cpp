// Ablation: fixed interval vs runtime feedback control vs oracle best
// interval (paper Sec. 5.4).  The feedback controller (Velusamy et al.
// [31]) keeps tags awake and retunes the interval from the observed
// induced-miss rate; it should recover a good share of the oracle's gain
// for gated-Vss.
#include <cstdio>

#include "bench/common.h"

int main() {
  std::printf("== Ablation: adaptivity (fixed vs feedback vs oracle), "
              "85C, L2=11, gated-vss ==\n");
  std::printf("%-10s %12s %14s %12s\n", "benchmark", "fixed 4k",
              "feedback", "oracle");
  const std::vector<uint64_t> grid = harness::paper_interval_grid();
  double sum_fixed = 0.0;
  double sum_fb = 0.0;
  double sum_oracle = 0.0;
  for (const auto& prof : workload::spec2000_profiles()) {
    harness::ExperimentConfig cfg = bench::base_config(11, 85.0);
    cfg.technique = leakctl::TechniqueParams::gated_vss();
    const double fixed =
        harness::run_experiment(prof, cfg).energy.net_savings_frac;

    cfg.adaptive_feedback = true;
    const double feedback =
        harness::run_experiment(prof, cfg).energy.net_savings_frac;
    cfg.adaptive_feedback = false;

    const double oracle = harness::best_interval_sweep(prof, cfg, grid)
                              .best.energy.net_savings_frac;
    std::printf("%-10s %11.2f%% %13.2f%% %11.2f%%\n", prof.name.data(),
                fixed * 100.0, feedback * 100.0, oracle * 100.0);
    sum_fixed += fixed;
    sum_fb += feedback;
    sum_oracle += oracle;
  }
  const double n = 11.0;
  std::printf("%-10s %11.2f%% %13.2f%% %11.2f%%\n", "AVG",
              sum_fixed / n * 100.0, sum_fb / n * 100.0,
              sum_oracle / n * 100.0);
  return 0;
}
