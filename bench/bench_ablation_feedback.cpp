// Ablation: fixed interval vs runtime feedback control vs oracle best
// interval (paper Sec. 5.4).  The feedback controller (Velusamy et al.
// [31]) keeps tags awake and retunes the interval from the observed
// induced-miss rate; it should recover a good share of the oracle's gain
// for gated-Vss.
//
// One flat sweep: per benchmark, a fixed cell, a feedback cell, and the
// 7-interval oracle grid — 99 cells across the worker pool.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  std::printf("== Ablation: adaptivity (fixed vs feedback vs oracle), "
              "85C, L2=11, gated-vss ==\n");
  std::printf("%-10s %12s %14s %12s\n", "benchmark", "fixed 4k",
              "feedback", "oracle");
  const std::vector<uint64_t> grid = harness::paper_interval_grid();
  using Scheme = harness::ExperimentConfig::AdaptiveScheme;
  const harness::ExperimentConfig fixed_cfg =
      bench::base_builder(11, 85.0)
          .technique(leakctl::TechniqueParams::gated_vss())
          .build();

  harness::SweepRunner runner(bench::sweep_options("ablation-feedback"));
  std::vector<std::size_t> fixed_idx;
  std::vector<std::size_t> fb_idx;
  std::vector<std::vector<std::size_t>> oracle_idx;
  for (const auto& prof : workload::spec2000_profiles()) {
    fixed_idx.push_back(runner.submit(prof, fixed_cfg));
    harness::ExperimentConfig fb_cfg = fixed_cfg;
    fb_cfg.adaptive = Scheme::feedback;
    fb_idx.push_back(runner.submit(prof, fb_cfg));
    std::vector<std::size_t> cells;
    for (const uint64_t interval : grid) {
      harness::ExperimentConfig cell = fixed_cfg;
      cell.decay_interval = interval;
      cells.push_back(runner.submit(prof, cell));
    }
    oracle_idx.push_back(std::move(cells));
  }
  const std::vector<harness::ExperimentResult> results =
      harness::values(runner.run(), runner.options().fail_fast);

  double sum_fixed = 0.0;
  double sum_fb = 0.0;
  double sum_oracle = 0.0;
  harness::Series fixed_series{"gated-vss/fixed-4k", {}};
  harness::Series fb_series{"gated-vss/feedback", {}};
  harness::Series oracle_series{"gated-vss/oracle", {}};
  const auto& profiles = workload::spec2000_profiles();
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const double fixed = results[fixed_idx[p]].energy.net_savings_frac;
    const double feedback = results[fb_idx[p]].energy.net_savings_frac;
    std::size_t best = oracle_idx[p].front();
    for (const std::size_t i : oracle_idx[p]) {
      if (results[i].energy.net_savings_frac >
          results[best].energy.net_savings_frac) {
        best = i;
      }
    }
    const double oracle = results[best].energy.net_savings_frac;
    fixed_series.results.push_back(results[fixed_idx[p]]);
    fb_series.results.push_back(results[fb_idx[p]]);
    oracle_series.results.push_back(results[best]);
    std::printf("%-10s %11.2f%% %13.2f%% %11.2f%%\n", profiles[p].name.data(),
                fixed * 100.0, feedback * 100.0, oracle * 100.0);
    sum_fixed += fixed;
    sum_fb += feedback;
    sum_oracle += oracle;
  }
  const double n = static_cast<double>(profiles.size());
  std::printf("%-10s %11.2f%% %13.2f%% %11.2f%%\n", "AVG",
              sum_fixed / n * 100.0, sum_fb / n * 100.0,
              sum_oracle / n * 100.0);
  bench::write_reports(report, "ablation: adaptivity (fixed/feedback/oracle)",
                       {fixed_series, fb_series, oracle_series});
  return 0;
}
