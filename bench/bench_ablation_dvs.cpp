// Ablation: leakage control under dynamic voltage scaling.
//
// DVS is one of HotLeakage's motivating use cases (paper Secs. 1, 3):
// lowering Vdd shrinks leakage through DIBL and dynamic energy
// quadratically, so both the savings pie and the technique costs move.
// This sweep shows the net savings of both techniques across supply
// points — the kind of study a fixed-unit-leakage model cannot run.
//
// All 4 supplies x 2 techniques x 11 benchmarks run as one 88-cell sweep.
#include <cstdio>
#include <vector>

#include "bench/common.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  std::printf("== Ablation: leakage control under DVS (110C, L2=11, "
              "interval 4k) ==\n");
  std::printf("%8s %10s | %18s | %18s\n", "Vdd[V]", "f[GHz]", "drowsy",
              "gated-vss");
  std::printf("%8s %10s | %9s %8s | %9s %8s\n", "", "", "savings", "loss",
              "savings", "loss");
  const std::vector<double> supplies = {0.9, 0.8, 0.7, 0.6};

  harness::SweepRunner runner(bench::sweep_options("ablation-dvs"));
  // Row-major submission: per supply, drowsy suite then gated suite.
  for (const double vdd : supplies) {
    for (const auto& tech : {leakctl::TechniqueParams::drowsy(),
                             leakctl::TechniqueParams::gated_vss()}) {
      const harness::ExperimentConfig cfg =
          bench::base_builder(11, 110.0).vdd(vdd).technique(tech).build();
      for (const auto& prof : workload::spec2000_profiles()) {
        runner.submit(prof, cfg);
      }
    }
  }
  std::vector<harness::ExperimentResult> all =
      harness::values(runner.run(), runner.options().fail_fast);

  const std::size_t n = workload::spec2000_profiles().size();
  auto slice = [&](std::size_t block) {
    return harness::SuiteResult(std::vector<harness::ExperimentResult>(
        all.begin() + static_cast<std::ptrdiff_t>(block * n),
        all.begin() + static_cast<std::ptrdiff_t>((block + 1) * n)));
  };
  std::vector<harness::Series> series;
  for (std::size_t v = 0; v < supplies.size(); ++v) {
    harness::SuiteResult d = slice(2 * v);
    harness::SuiteResult g = slice(2 * v + 1);
    std::printf("%8.2f %10.2f | %8.2f%% %7.2f%% | %8.2f%% %7.2f%%\n",
                supplies[v], 5.6 * supplies[v] / 0.9,
                d.mean_net_savings() * 100.0, d.mean_slowdown() * 100.0,
                g.mean_net_savings() * 100.0, g.mean_slowdown() * 100.0);
    char label[32];
    std::snprintf(label, sizeof(label), "drowsy@%.2fV", supplies[v]);
    series.push_back({label, std::move(d)});
    std::snprintf(label, sizeof(label), "gated-vss@%.2fV", supplies[v]);
    series.push_back({label, std::move(g)});
  }
  std::printf("\nAs Vdd scales down toward the drowsy retention voltage "
              "(~0.32 V), drowsy's standby advantage collapses — the gap "
              "between operating and retention supply is what it saves.  "
              "Gated-Vss disconnects the rail entirely, so its savings are "
              "supply-independent: DVS widens gated-Vss's lead.\n");
  bench::write_reports(report, "ablation: DVS supply sweep", series);
  return 0;
}
