// Ablation: leakage control under dynamic voltage scaling.
//
// DVS is one of HotLeakage's motivating use cases (paper Secs. 1, 3):
// lowering Vdd shrinks leakage through DIBL and dynamic energy
// quadratically, so both the savings pie and the technique costs move.
// This sweep shows the net savings of both techniques across supply
// points — the kind of study a fixed-unit-leakage model cannot run.
#include <cstdio>

#include "bench/common.h"

int main() {
  std::printf("== Ablation: leakage control under DVS (110C, L2=11, "
              "interval 4k) ==\n");
  std::printf("%8s %10s | %18s | %18s\n", "Vdd[V]", "f[GHz]", "drowsy",
              "gated-vss");
  std::printf("%8s %10s | %9s %8s | %9s %8s\n", "", "", "savings", "loss",
              "savings", "loss");
  for (double vdd : {0.9, 0.8, 0.7, 0.6}) {
    harness::ExperimentConfig cfg = bench::base_config(11, 110.0);
    cfg.vdd = vdd;
    cfg.technique = leakctl::TechniqueParams::drowsy();
    const auto d = harness::averages(harness::run_suite(cfg));
    cfg.technique = leakctl::TechniqueParams::gated_vss();
    const auto g = harness::averages(harness::run_suite(cfg));
    std::printf("%8.2f %10.2f | %8.2f%% %7.2f%% | %8.2f%% %7.2f%%\n", vdd,
                5.6 * vdd / 0.9, d.net_savings * 100.0, d.perf_loss * 100.0,
                g.net_savings * 100.0, g.perf_loss * 100.0);
  }
  std::printf("\nAs Vdd scales down toward the drowsy retention voltage "
              "(~0.32 V), drowsy's standby advantage collapses — the gap "
              "between operating and retention supply is what it saves.  "
              "Gated-Vss disconnects the rail entirely, so its savings are "
              "supply-independent: DVS widens gated-Vss's lead.\n");
  return 0;
}
