// Multi-tenant shared-L2 sweep: tenant coloring vs plain noaccess decay.
//
// N benchmark streams share one core under a round-robin context-switch
// schedule (workload::Interleaver) and one L2 behind a *plain* L1-D — so
// the scoreboard isolates the shared level, where the multi-tenant story
// lives.  Two leakage-control policies on that L2 go head to head on
// identical instruction streams:
//
//   noaccess : the paper's per-line idle-decay counters, blind to who
//              owns a line.  With the L2-scale intervals a large array
//              needs, a short context-switch quantum means an idle
//              tenant's lines barely start counting down before their
//              owner is back.
//   coloring : DecayPolicy::tenant_color set-partitions the L2 by
//              tenant and drowses every color the running tenant does
//              not own at each context switch — (N-1)/N of the array in
//              standby immediately, no counters, no interval tuning.
//
// Per-tenant fairness stats (schema-4 "tenants" section) come with every
// cell: occupancy and standby residency, induced misses, switch-outs,
// and the color budget each tenant got.
//
// Knobs:
//   HLCC_TENANTS        tenant count (default 4)
//   HLCC_MT_BENCHMARKS  comma-separated mix, cycled to HLCC_TENANTS
//                       entries (default "gcc,mcf,gzip,twolf")
//   HLCC_MT_QUANTA      comma-separated context-switch quanta in
//                       committed instructions (default "10000,50000")
//   HLCC_MT_L2_INTERVAL noaccess decay interval for the shared L2
//                       (default 262144)
//   HLCC_INSTRUCTIONS   run length per cell (bench/common.h)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"

namespace {

std::vector<std::string> name_list_env(const char* name,
                                       std::vector<std::string> fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) {
    return fallback;
  }
  std::vector<std::string> out;
  const std::string text(env);
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = text.find(',', pos);
    out.push_back(text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

std::vector<uint64_t> u64_list_env(const char* name, const char* what,
                                   std::vector<uint64_t> fallback) {
  std::vector<uint64_t> out;
  for (const std::string& item : name_list_env(name, {})) {
    out.push_back(harness::env::parse_positive_u64(name, item, what));
  }
  return out.empty() ? fallback : out;
}

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  unsigned tenants = 4;
  std::vector<std::string> benchmarks;
  std::vector<uint64_t> quanta;
  uint64_t l2_interval = 262144;
  try {
    tenants = static_cast<unsigned>(
        harness::env::positive_u64("HLCC_TENANTS", "tenant count")
            .value_or(4));
    benchmarks =
        name_list_env("HLCC_MT_BENCHMARKS", {"gcc", "mcf", "gzip", "twolf"});
    quanta = u64_list_env("HLCC_MT_QUANTA", "context-switch quantum",
                          {10000, 50000});
    l2_interval = harness::env::positive_u64("HLCC_MT_L2_INTERVAL",
                                             "L2 decay interval")
                      .value_or(262144);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  // One mix: the benchmark list cycled out to the tenant count.
  std::vector<std::string> mix(tenants);
  for (unsigned i = 0; i < tenants; ++i) {
    mix[i] = benchmarks[i % benchmarks.size()];
  }

  // Fig. 8/9 operating point (110 C, L2 latency 11); plain L1-D over a
  // drowsy-technique controlled L2.  The coloring config cannot go
  // through Builder::build() — tenant_color validates against
  // tenants.count, which multi_tenant_sweep fills in per cell — so both
  // shapes are plain-struct mutations of the validated base.
  const harness::ExperimentConfig base =
      bench::base_builder(11, 110.0).variation(false);
  const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
  const auto sweep = [&](leakctl::DecayPolicy policy, const char* label) {
    harness::ExperimentConfig cfg = base;
    cfg.technique = leakctl::TechniqueParams::drowsy();
    cfg.levels = {
        {.name = "l1d", .geometry = pcfg.l1d, .control = std::nullopt},
        {.name = "l2",
         .geometry = pcfg.l2,
         .control = harness::LevelControl{leakctl::TechniqueParams::drowsy(),
                                          policy, l2_interval}}};
    return harness::multi_tenant_sweep(cfg, {mix}, quanta,
                                       bench::sweep_options(label));
  };
  const std::vector<harness::MultiTenantCell> noaccess =
      sweep(leakctl::DecayPolicy::noaccess, "mt-noaccess");
  const std::vector<harness::MultiTenantCell> coloring =
      sweep(leakctl::DecayPolicy::tenant_color, "mt-coloring");

  std::printf("== Multi-tenant shared L2: tenant coloring vs noaccess decay "
              "(110C, L2=11) ==\n");
  std::printf("%u tenants round-robin on one core; plain L1-D; drowsy L2, "
              "noaccess interval %llu\n\n",
              tenants, static_cast<unsigned long long>(l2_interval));
  std::printf("%-28s %9s | %22s | %s\n", "mix", "quantum",
              "total net  noacc/color", "winner");
  std::size_t coloring_wins = 0;
  for (std::size_t i = 0; i < noaccess.size(); ++i) {
    const harness::MultiTenantCell& n = noaccess[i];
    const harness::MultiTenantCell& c = coloring[i];
    const double n_net = n.result.hierarchy.total_net_savings_j;
    const double c_net = c.result.hierarchy.total_net_savings_j;
    const bool win = c_net > n_net;
    coloring_wins += win ? 1 : 0;
    std::printf("%-28s %8lluk | %9.3g J %9.3g J | %s%s\n", n.mix.c_str(),
                static_cast<unsigned long long>(n.quantum / 1000),
                n_net, c_net, win ? "coloring" : "noaccess",
                win ? "  WIN" : "");
  }

  // Per-tenant fairness books of the first coloring cell: who held how
  // much of the L2, who paid the switch-induced wakes, who saved what.
  const harness::MultiTenantCell& c0 = coloring.front();
  std::printf("\nFairness, coloring cell %s @ %lluk (per tenant):\n",
              c0.mix.c_str(),
              static_cast<unsigned long long>(c0.quantum / 1000));
  std::printf("  %-6s %-8s %8s %12s %12s %14s %16s\n", "tenant", "bench",
              "colors", "slow_hits", "switch_outs", "occupancy_lc",
              "standby_lc");
  for (std::size_t t = 0; t < c0.result.tenants.size(); ++t) {
    const leakctl::TenantStats& ts = c0.result.tenants[t];
    std::printf("  %-6zu %-8s %8llu %12llu %12llu %14llu %16llu\n", t,
                mix[t].c_str(), ts.colors, ts.slow_hits, ts.switch_outs,
                ts.occupancy_line_cycles, ts.standby_line_cycles);
  }

  if (coloring_wins > 0) {
    std::printf("\ncoloring beats noaccess decay on total net leakage in "
                "%zu of %zu cells: switch-time partition gating turns off "
                "(N-1)/N of the L2 without waiting out an idle interval.\n",
                coloring_wins, noaccess.size());
  } else {
    std::printf("\nnoaccess decay holds every cell on this grid (long "
                "quanta amortize the counters; shorten HLCC_MT_QUANTA to "
                "see coloring pull ahead).\n");
  }

  harness::Series n_series{"mt-noaccess", {}};
  harness::Series c_series{"mt-coloring", {}};
  for (const harness::MultiTenantCell& c : noaccess) {
    n_series.results.push_back(c.result);
  }
  for (const harness::MultiTenantCell& c : coloring) {
    c_series.results.push_back(c.result);
  }
  bench::write_reports(report, "multi-tenant: shared-L2 tenant coloring",
                       {n_series, c_series});
  return 0;
}
