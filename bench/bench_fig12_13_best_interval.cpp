// Figures 12 and 13: net leakage savings (85 C, 11-cycle L2) and
// performance loss when each benchmark runs at its own best decay interval
// (the oracle for adaptive schemes, Sec. 5.4).  Also prints the comparison
// with the fixed-interval run: adaptivity primarily benefits gated-Vss.
#include <iostream>

#include "bench/common.h"

int main() {
  harness::ExperimentConfig cfg = bench::base_config(11, 85.0);
  const std::vector<uint64_t> grid = harness::paper_interval_grid();

  harness::Series drowsy{"drowsy", {}};
  harness::Series gated{"gated-vss", {}};
  for (const auto& prof : workload::spec2000_profiles()) {
    cfg.technique = leakctl::TechniqueParams::drowsy();
    drowsy.results.push_back(
        harness::best_interval_sweep(prof, cfg, grid).best);
    cfg.technique = leakctl::TechniqueParams::gated_vss();
    gated.results.push_back(
        harness::best_interval_sweep(prof, cfg, grid).best);
  }

  harness::print_savings_figure(
      std::cout,
      "Figure 12: net leakage savings @85C, L2=11, best per-benchmark "
      "interval",
      {drowsy, gated});
  harness::print_perf_figure(
      std::cout,
      "Figure 13: performance loss, L2=11, best per-benchmark interval",
      {drowsy, gated});

  // Sec. 5.4 comparison against the fixed default interval.
  auto [drowsy_fixed, gated_fixed] = bench::run_both(bench::base_config(11, 85.0));
  const auto db = harness::averages(drowsy.results);
  const auto gb = harness::averages(gated.results);
  const auto df = harness::averages(drowsy_fixed.results);
  const auto gf = harness::averages(gated_fixed.results);
  std::cout << "adaptivity benefit (avg savings, avg perf loss):\n";
  std::cout << "  gated-vss: " << gf.net_savings * 100 << "% -> "
            << gb.net_savings * 100 << "%,  " << gf.perf_loss * 100
            << "% -> " << gb.perf_loss * 100 << "%\n";
  std::cout << "  drowsy:    " << df.net_savings * 100 << "% -> "
            << db.net_savings * 100 << "%,  " << df.perf_loss * 100
            << "% -> " << db.perf_loss * 100 << "%\n";
  return 0;
}
