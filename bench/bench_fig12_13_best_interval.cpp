// Figures 12 and 13: net leakage savings (85 C, 11-cycle L2) and
// performance loss when each benchmark runs at its own best decay interval
// (the oracle for adaptive schemes, Sec. 5.4).  Also prints the comparison
// with the fixed-interval run: adaptivity primarily benefits gated-Vss.
//
// Runs on the sweep engine as two flat benchmark x interval grids (one
// per technique) plus the fixed-interval suite pair.
#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  const std::vector<uint64_t> grid = harness::paper_interval_grid();

  harness::Series drowsy{"drowsy", {}};
  harness::Series gated{"gated-vss", {}};
  for (auto& sweep : harness::best_interval_sweeps_all(
           bench::base_builder(11, 85.0)
               .technique(leakctl::TechniqueParams::drowsy())
               .build(),
           grid, bench::sweep_options("fig12-13 drowsy oracle"))) {
    drowsy.results.push_back(std::move(sweep.best));
  }
  for (auto& sweep : harness::best_interval_sweeps_all(
           bench::base_builder(11, 85.0)
               .technique(leakctl::TechniqueParams::gated_vss())
               .build(),
           grid, bench::sweep_options("fig12-13 gated oracle"))) {
    gated.results.push_back(std::move(sweep.best));
  }

  harness::print_savings_figure(
      std::cout,
      "Figure 12: net leakage savings @85C, L2=11, best per-benchmark "
      "interval",
      {drowsy, gated});
  harness::print_perf_figure(
      std::cout,
      "Figure 13: performance loss, L2=11, best per-benchmark interval",
      {drowsy, gated});

  // Sec. 5.4 comparison against the fixed default interval.
  auto [drowsy_fixed, gated_fixed] =
      bench::run_both(bench::base_config(11, 85.0), "fig12-13 fixed");
  std::cout << "adaptivity benefit (avg savings, avg perf loss):\n";
  std::cout << "  gated-vss: " << gated_fixed.results.mean_net_savings() * 100
            << "% -> " << gated.results.mean_net_savings() * 100 << "%,  "
            << gated_fixed.results.mean_slowdown() * 100 << "% -> "
            << gated.results.mean_slowdown() * 100 << "%\n";
  std::cout << "  drowsy:    " << drowsy_fixed.results.mean_net_savings() * 100
            << "% -> " << drowsy.results.mean_net_savings() * 100 << "%,  "
            << drowsy_fixed.results.mean_slowdown() * 100 << "% -> "
            << drowsy.results.mean_slowdown() * 100 << "%\n";
  drowsy.label = "drowsy-oracle";
  gated.label = "gated-vss-oracle";
  drowsy_fixed.label = "drowsy-fixed";
  gated_fixed.label = "gated-vss-fixed";
  bench::write_reports(report, "fig12-13: 85C, L2=11, oracle intervals",
                       {drowsy, gated, drowsy_fixed, gated_fixed});
  return 0;
}
