// Extension: decay applied to the branch predictor and BTB (Hu et al.,
// paper reference [17]) — per-benchmark turnoff ratio, gross predictor
// leakage savings, and the misprediction cost, over an interval sweep.
#include <cstdio>

#include "bench/common.h"
#include "leakctl/predictor_decay.h"

int main() {
  const uint64_t insts = bench::instructions();
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70);
  model.set_operating_point(hotleakage::OperatingPoint::at_celsius(110, 0.9));

  std::printf("== Extension: branch predictor + BTB decay (gated rows) ==\n");
  std::printf("%-10s %9s | %10s %9s %12s\n", "benchmark", "interval",
              "mispred", "turnoff", "gross save");
  for (const auto& prof : workload::spec2000_profiles()) {
    bool first = true;
    for (uint64_t interval : {16384ull, 65536ull, 262144ull}) {
      leakctl::PredictorDecayConfig cfg;
      cfg.decay_interval = interval;
      const auto r = leakctl::run_predictor_decay_experiment(
          prof, cfg, model, insts, 1.5);
      std::printf("%-10s %8lluk | %5.2f%% (%+.2f) %8.1f%% %11.1f%%\n",
                  first ? prof.name.data() : "",
                  static_cast<unsigned long long>(interval / 1024),
                  r.decayed_mispredict_rate * 100.0,
                  (r.decayed_mispredict_rate - r.plain_mispredict_rate) *
                      100.0,
                  r.turnoff_ratio * 100.0, r.gross_leakage_savings * 100.0);
      first = false;
    }
  }
  std::printf("(mispred column: decayed rate, with delta vs the plain "
              "predictor in parentheses)\n");
  return 0;
}
