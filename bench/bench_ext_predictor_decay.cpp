// Extension: decay applied to the branch predictor and BTB (Hu et al.,
// paper reference [17]) — per-benchmark turnoff ratio, gross predictor
// leakage savings, and the misprediction cost, over an interval sweep.
// The benchmark x interval grid runs through harness::SweepRunner::run; the
// LeakageModel is shared read-only across workers (all evaluation is
// const after set_operating_point).
#include <cstdio>

#include "bench/common.h"
#include "leakctl/predictor_decay.h"

namespace {

struct Cell {
  workload::BenchmarkProfile profile;
  uint64_t interval = 0;
};

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  const uint64_t insts = bench::instructions();
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70);
  model.set_operating_point(hotleakage::OperatingPoint::at_celsius(110, 0.9));
  const std::vector<uint64_t> intervals = {16384, 65536, 262144};

  std::vector<Cell> cells;
  for (const auto& prof : workload::spec2000_profiles()) {
    for (const uint64_t interval : intervals) {
      cells.push_back({prof, interval});
    }
  }
  harness::SweepRunner runner(bench::sweep_options("ext-predictor"));
  const auto rows = harness::values(runner.run(cells, [&](const Cell& c) {
    leakctl::PredictorDecayConfig cfg;
    cfg.decay_interval = c.interval;
    return leakctl::run_predictor_decay_experiment(c.profile, cfg, model,
                                                   insts, 1.5);
  }));

  std::printf("== Extension: branch predictor + BTB decay (gated rows) ==\n");
  std::printf("%-10s %9s | %10s %9s %12s\n", "benchmark", "interval",
              "mispred", "turnoff", "gross save");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& r = rows[i];
    const bool first = i % intervals.size() == 0;
    std::printf("%-10s %8lluk | %5.2f%% (%+.2f) %8.1f%% %11.1f%%\n",
                first ? cells[i].profile.name.data() : "",
                static_cast<unsigned long long>(cells[i].interval / 1024),
                r.decayed_mispredict_rate * 100.0,
                (r.decayed_mispredict_rate - r.plain_mispredict_rate) * 100.0,
                r.turnoff_ratio * 100.0, r.gross_leakage_savings * 100.0);
  }
  std::printf("(mispred column: decayed rate, with delta vs the plain "
              "predictor in parentheses)\n");
  bench::write_reports(report, "ext: predictor + BTB decay");
  return 0;
}
