// Figures 5 and 6: net leakage savings and performance loss at 110 C with
// an 8-cycle L2 — gated-Vss still ahead, drowsy better on a small number
// of benchmarks.
#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  auto [drowsy, gated] = bench::run_both(bench::base_config(8, 110.0), "fig5-6");
  harness::print_savings_figure(
      std::cout, "Figure 5: net leakage savings @110C, L2=8 cycles",
      {drowsy, gated});
  harness::print_perf_figure(
      std::cout, "Figure 6: performance loss, L2=8 cycles", {drowsy, gated});
  bench::write_reports(report, "fig5-6: 110C, L2=8", {drowsy, gated});
  return 0;
}
