// Figures 8 and 9: net leakage savings (110 C) and performance loss with
// the baseline 11-cycle L2 — the "less clear" regime: gated-Vss slightly
// better on average savings, slightly worse on average performance loss,
// with each technique winning on about half the benchmarks.
#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  auto [drowsy, gated] = bench::run_both(bench::base_config(11, 110.0), "fig8-9");
  harness::print_savings_figure(
      std::cout, "Figure 8: net leakage savings @110C, L2=11 cycles",
      {drowsy, gated});
  harness::print_perf_figure(
      std::cout, "Figure 9: performance loss, L2=11 cycles", {drowsy, gated});

  int drowsy_wins = 0;
  for (std::size_t i = 0; i < drowsy.results.size(); ++i) {
    if (drowsy.results[i].energy.net_savings_frac >
        gated.results[i].energy.net_savings_frac) {
      ++drowsy_wins;
    }
  }
  std::cout << "benchmarks where drowsy wins on savings: " << drowsy_wins
            << "/" << drowsy.results.size() << "\n";
  bench::write_reports(report, "fig8-9: 110C, L2=11", {drowsy, gated});
  return 0;
}
