// Extension: leakage control on the L1 *instruction* cache.
//
// The paper studies the D-cache; the drowsy paper's other half applies the
// same machinery to the I-cache.  Instruction lines are clean (no
// writebacks) and fetch stalls are harder to hide than load latency, so
// the drowsy/gated trade-off shifts: induced fetch misses stall the front
// end directly.
//
// The benchmark x technique grid runs through harness::SweepRunner::run — the
// generic lane of the sweep engine for cells that are not run_experiment
// calls.
#include <cstdio>

#include "bench/common.h"
#include "leakctl/controlled_iport.h"
#include "workload/generator.h"

namespace {

struct Row {
  double perf_loss = 0.0;
  double turnoff = 0.0;
  unsigned long long standby_events = 0;
};

Row run(const workload::BenchmarkProfile& prof,
        const leakctl::TechniqueParams& tech, uint64_t insts) {
  const sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);

  // Baseline.
  sim::Processor base(pcfg);
  sim::BaselineDataPort base_d(pcfg.l1d, base.l2(), nullptr);
  workload::Generator gen_a(prof, 1);
  const sim::RunStats base_run = base.run(gen_a, base_d, insts);

  // Controlled I-cache (plain D-cache, to isolate the I-side effect).
  sim::Processor proc(pcfg);
  sim::BaselineDataPort dport(pcfg.l1d, proc.l2(), nullptr);
  leakctl::ControlledCacheConfig icfg;
  icfg.cache = pcfg.l1i;
  icfg.technique = tech;
  icfg.decay_interval = 4096;
  leakctl::ControlledFetchPort iport(icfg, proc.l2(), nullptr);
  workload::Generator gen_b(prof, 1);
  const sim::RunStats run = proc.run(gen_b, dport, iport, insts);
  iport.finalize(run.cycles);

  Row row;
  row.perf_loss = base_run.cycles
                      ? (static_cast<double>(run.cycles) -
                         static_cast<double>(base_run.cycles)) /
                            static_cast<double>(base_run.cycles)
                      : 0.0;
  row.turnoff = iport.stats().turnoff_ratio();
  row.standby_events =
      iport.stats().slow_hits + iport.stats().induced_misses;
  return row;
}

struct Cell {
  workload::BenchmarkProfile profile;
  leakctl::TechniqueParams tech;
};

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  const uint64_t insts = bench::instructions();
  std::printf("== Extension: L1 I-cache decay (110C-equivalent machine, "
              "L2=11, interval 4k) ==\n");
  std::printf("%-10s | %22s | %22s\n", "", "drowsy I-cache",
              "gated-Vss I-cache");
  std::printf("%-10s | %8s %7s %6s | %8s %7s %6s\n", "benchmark", "turnoff",
              "loss", "events", "turnoff", "loss", "events");

  std::vector<Cell> cells;
  for (const auto& prof : workload::spec2000_profiles()) {
    cells.push_back({prof, leakctl::TechniqueParams::drowsy()});
    cells.push_back({prof, leakctl::TechniqueParams::gated_vss()});
  }
  harness::SweepRunner runner(bench::sweep_options("ext-icache"));
  const std::vector<Row> rows = harness::values(runner.run(
      cells, [&](const Cell& c) { return run(c.profile, c.tech, insts); }));

  const auto& profiles = workload::spec2000_profiles();
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const Row& d = rows[2 * p];
    const Row& g = rows[2 * p + 1];
    std::printf("%-10s | %7.1f%% %6.2f%% %6llu | %7.1f%% %6.2f%% %6llu\n",
                profiles[p].name.data(), d.turnoff * 100, d.perf_loss * 100,
                d.standby_events, g.turnoff * 100, g.perf_loss * 100,
                g.standby_events);
  }
  bench::write_reports(report, "ext: L1 I-cache decay");
  return 0;
}
