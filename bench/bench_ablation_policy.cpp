// Ablation: noaccess vs simple decay policy (paper Sec. 2.3).
//
// The simple policy keeps no per-line history and turns everything off
// every interval: more leakage savings, more slow hits / induced misses.
// The paper uses noaccess for both techniques to keep the comparison fair.
#include <cstdio>

#include "bench/common.h"

namespace {

harness::Series run(const leakctl::TechniqueParams& tech,
                    leakctl::DecayPolicy policy, const char* label) {
  harness::SuiteResult suite = harness::run_suite(
      bench::base_builder(11, 110.0).technique(tech).policy(policy).build(),
      bench::sweep_options("ablation-policy"));
  unsigned long long standby_events = 0;
  for (const auto& r : suite) {
    standby_events += r.control.slow_hits + r.control.induced_misses;
  }
  std::printf("%-10s %-9s savings %6.2f %%  perf loss %5.2f %%  turnoff "
              "%5.1f %%  standby events %llu\n",
              tech.name.data(), label, suite.mean_net_savings() * 100.0,
              suite.mean_slowdown() * 100.0, suite.mean_turnoff() * 100.0,
              standby_events);
  return {std::string(tech.name) + "/" + label, std::move(suite)};
}

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  std::printf("== Ablation: decay policy (noaccess vs simple), 110C, "
              "L2=11 ==\n");
  std::vector<harness::Series> series;
  series.push_back(run(leakctl::TechniqueParams::drowsy(),
                       leakctl::DecayPolicy::noaccess, "noaccess"));
  series.push_back(run(leakctl::TechniqueParams::drowsy(),
                       leakctl::DecayPolicy::simple, "simple"));
  series.push_back(run(leakctl::TechniqueParams::gated_vss(),
                       leakctl::DecayPolicy::noaccess, "noaccess"));
  series.push_back(run(leakctl::TechniqueParams::gated_vss(),
                       leakctl::DecayPolicy::simple, "simple"));
  bench::write_reports(report, "ablation: decay policy", series);
  return 0;
}
