// Extension: the leakage-temperature feedback loop.
//
// HotLeakage's reason to exist is recomputing leakage as temperature and
// voltage change at runtime (paper Secs. 1, 3).  This bench closes the
// loop with the thermal-RC substrate: leakage heats the die, heat raises
// leakage, and the system either converges or runs away.  Leakage control
// on the L1D shifts the equilibrium down — a cooling benefit on top of the
// energy benefit the main experiments measure.  Each operating point is
// an independent fixed-point iteration, so the sweeps run through
// harness::SweepRunner::run (every cell builds its own LeakageModel).
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "thermal/feedback.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  std::printf("== Extension: leakage-temperature feedback (70nm, Table 2 "
              "floorplan) ==\n");
  std::printf("%-10s %10s %10s %12s %12s %10s\n", "Pdyn[W]", "core[C]",
              "L1D[C]", "leakL1D[W]", "leakTot[W]", "status");
  const std::vector<double> pdyn_points = {10.0, 20.0, 30.0,
                                           40.0, 60.0, 120.0};
  harness::SweepRunner loop_runner(bench::sweep_options("ext-thermal"));
  const auto loops =
      harness::values(loop_runner.run(pdyn_points, [](double pdyn) {
        hotleakage::LeakageModel model(
            hotleakage::TechNode::nm70,
            hotleakage::VariationConfig{.enabled = false});
        return thermal::run_leakage_thermal_loop(model, pdyn, pdyn / 8.0);
      }));
  for (std::size_t i = 0; i < pdyn_points.size(); ++i) {
    const thermal::FeedbackResult& r = loops[i];
    std::printf("%-10.0f %10.1f %10.1f %12.2f %12.2f %10s\n", pdyn_points[i],
                r.final_core_c, r.final_l1d_c, r.final_l1d_leakage_w,
                r.final_total_leakage_w,
                r.runaway ? "RUNAWAY" : (r.converged ? "steady" : "limit"));
  }

  std::printf("\nwith leakage control on the L1D (gated-Vss at 90%% "
              "turnoff), Pdyn=40 W:\n");
  const std::vector<double> scales = {1.0, 0.5, 0.1};
  harness::SweepRunner ctl_runner(bench::sweep_options("ext-thermal-ctl"));
  const auto controlled =
      harness::values(ctl_runner.run(scales, [](double scale) {
        hotleakage::LeakageModel model(
            hotleakage::TechNode::nm70,
            hotleakage::VariationConfig{.enabled = false});
        thermal::FeedbackConfig cfg;
        cfg.l1d_leakage_scale = scale;
        return thermal::run_leakage_thermal_loop(model, 40.0, 5.0, cfg);
      }));
  for (std::size_t i = 0; i < scales.size(); ++i) {
    std::printf("  L1D leakage scale %.1f: L1D %.1f C, %.2f W of L1D "
                "leakage\n",
                scales[i], controlled[i].final_l1d_c,
                controlled[i].final_l1d_leakage_w);
  }
  std::printf("\nNote the compounding: controlling leakage lowers "
              "temperature, which lowers leakage again — the coupling only "
              "a runtime-recalculating model captures.\n");
  bench::write_reports(report, "ext: leakage-thermal feedback");
  return 0;
}
