// Figure 1: unit-leakage model vs transistor-level reference.
//
// Four sweeps at 70 nm — (a) W/L, (b) Vdd, (c) temperature, (d) Vth —
// printing the architectural model (Eq. 2), the reference device model,
// and the relative error.  The paper reports near-perfect agreement for
// (a)-(c) and divergence beyond the normal Vth range in (d).
#include <cstdio>

#include "bench/common.h"
#include "hotleakage/bsim3.h"
#include "spiceref/device.h"

namespace {

using hotleakage::DeviceType;
using hotleakage::OperatingPoint;
using hotleakage::TechNode;

void row(double x, const char* unit, double model, double ref) {
  const double err = ref > 0.0 ? (model - ref) / ref : 0.0;
  std::printf("  %10.3f %-4s  model %.4e A  ref %.4e A  err %+6.1f %%\n", x,
              unit, model, ref, err * 100.0);
}

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  const hotleakage::TechParams& tech =
      hotleakage::tech_params(TechNode::nm70);

  std::printf("== Figure 1: unit leakage, model vs transistor-level "
              "reference (70nm) ==\n");

  std::printf("(a) W/L sweep @ Vdd=0.9 V, T=300 K\n");
  for (double wl : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    const OperatingPoint op{.temperature_k = 300.0, .vdd = 0.9};
    const double model = hotleakage::subthreshold_current(
        tech, DeviceType::nmos, op, {.w_over_l = wl});
    const double ref = spiceref::reference_leakage(
        tech, DeviceType::nmos,
        {.vgs = 0.0, .vds = 0.9, .vsb = 0.0, .temperature_k = 300.0},
        {.w_over_l = wl});
    row(wl, "W/L", model, ref);
  }

  std::printf("(b) Vdd sweep @ W/L=1, T=300 K\n");
  for (double vdd : {0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1}) {
    const OperatingPoint op{.temperature_k = 300.0, .vdd = vdd};
    const double model =
        hotleakage::subthreshold_current(tech, DeviceType::nmos, op);
    const double ref = spiceref::reference_leakage(
        tech, DeviceType::nmos,
        {.vgs = 0.0, .vds = vdd, .vsb = 0.0, .temperature_k = 300.0});
    row(vdd, "V", model, ref);
  }

  std::printf("(c) temperature sweep @ W/L=1, Vdd=0.9 V\n");
  for (double t : {300.0, 320.0, 340.0, 358.15, 370.0, 383.15}) {
    const OperatingPoint op{.temperature_k = t, .vdd = 0.9};
    const double model =
        hotleakage::subthreshold_current(tech, DeviceType::nmos, op);
    const double ref = spiceref::reference_leakage(
        tech, DeviceType::nmos,
        {.vgs = 0.0, .vds = 0.9, .vsb = 0.0, .temperature_k = t});
    row(t, "K", model, ref);
  }

  std::printf("(d) Vth sweep @ W/L=1, Vdd=0.9 V, T=300 K\n");
  for (double vth : {0.10, 0.15, 0.19, 0.25, 0.30, 0.35, 0.40, 0.45}) {
    const OperatingPoint op{.temperature_k = 300.0, .vdd = 0.9};
    const double model = hotleakage::subthreshold_current(
        tech, DeviceType::nmos, op, {.vth_absolute = vth});
    const double ref = spiceref::reference_leakage(
        tech, DeviceType::nmos,
        {.vgs = 0.0, .vds = 0.9, .vsb = 0.0, .temperature_k = 300.0},
        {.w_over_l = 1.0, .vth_absolute = vth});
    row(vth, "V", model, ref);
  }
  std::printf("note: (d) diverges beyond the nominal Vth (0.19 V) where the "
              "junction/gate floor the simple model omits dominates — the "
              "paper's Fig. 1d caveat.\n");
  bench::write_reports(report, "fig1: unit leakage model vs reference");
  return 0;
}
