// Figure 7: net leakage savings at 85 C with an 11-cycle L2 (compare with
// Figure 8 at 110 C for the Sec. 5.2 temperature study).
#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  auto [drowsy, gated] = bench::run_both(bench::base_config(11, 85.0), "fig7");
  harness::print_savings_figure(
      std::cout, "Figure 7: net leakage savings @85C, L2=11 cycles",
      {drowsy, gated});
  const harness::SuiteAverages d = harness::averages(drowsy.results);
  const harness::SuiteAverages g = harness::averages(gated.results);
  std::cout << "turnoff ratio (avg): drowsy "
            << static_cast<int>(d.turnoff * 100) << " %, gated-vss "
            << static_cast<int>(g.turnoff * 100) << " %\n";
  bench::write_reports(report, "fig7: 85C, L2=11", {drowsy, gated});
  return 0;
}
