// Figures 3 and 4: net leakage savings and performance loss at 110 C with
// a 5-cycle (fast on-chip) L2 — the regime where gated-Vss is almost
// uniformly superior.
#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  auto [drowsy, gated] = bench::run_both(bench::base_config(5, 110.0), "fig3-4");
  harness::print_savings_figure(
      std::cout, "Figure 3: net leakage savings @110C, L2=5 cycles",
      {drowsy, gated});
  harness::print_perf_figure(
      std::cout, "Figure 4: performance loss, L2=5 cycles", {drowsy, gated});
  bench::write_reports(report, "fig3-4: 110C, L2=5", {drowsy, gated});
  return 0;
}
