// Table 1: settling times, echoed from the technique descriptors and
// verified behaviourally against the ControlledCache latency/residency
// machinery.
#include <cstdio>
#include <memory>

#include "bench/common.h"
#include "leakctl/controlled_cache.h"
#include "sim/processor.h"

namespace {

using leakctl::ControlledCache;
using leakctl::ControlledCacheConfig;
using leakctl::TechniqueParams;

/// Measure the wake latency a standby access pays (slow hit for drowsy,
/// L2 round trip for gated), plus the settle charge at deactivation.
void report(const TechniqueParams& tech) {
  sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
  ControlledCacheConfig ccfg;
  ccfg.cache = {.size_bytes = 1024, .assoc = 2, .line_bytes = 64,
                .hit_latency = 2};
  ccfg.technique = tech;
  ccfg.decay_interval = 4096;
  sim::MemoryBackend mem(pcfg.memory_latency, nullptr);
  sim::CacheLevel l2(pcfg.l2, mem, nullptr);
  ControlledCache cc(ccfg, l2, nullptr);

  cc.access(0x0, false, 10);                      // fill, active
  const unsigned normal = cc.access(0x0, false, 20);
  const unsigned standby = cc.access(0x0, false, 10'000); // after decay
  cc.finalize(11'000);

  std::printf("%-10s settle high->low %2u cyc, low->high %2u cyc | "
              "active hit %u cyc, standby access %u cyc, decays %llu\n",
              tech.name.data(), tech.settle_to_low, tech.settle_to_high,
              normal, standby, cc.stats().decays);
}

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report_opts = bench::parse_cli(argc, argv);
  std::printf("== Table 1: settling time (cycles) ==\n");
  std::printf("%-24s %8s %12s\n", "", "Drowsy", "Gated-Vss");
  const TechniqueParams d = TechniqueParams::drowsy();
  const TechniqueParams g = TechniqueParams::gated_vss();
  std::printf("%-24s %8u %12u\n", "Low leak mode to high", d.settle_to_high,
              g.settle_to_high);
  std::printf("%-24s %8u %12u\n", "High leak to low", d.settle_to_low,
              g.settle_to_low);
  std::printf("\nbehavioural check:\n");
  report(d);
  report(g);
  report(TechniqueParams::rbb());
  bench::write_reports(report_opts, "table1: settling times");
  return 0;
}
