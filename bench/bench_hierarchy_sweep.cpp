// Hierarchy sweep: leakage control at BOTH cache levels, and the books
// the paper never opened.
//
// The paper ranks drowsy vs gated-Vss on L1-D leakage alone.  This bench
// runs the joint (L1 interval x L2 interval) grid with the same technique
// applied at both levels (harness::joint_interval_sweep: explicit
// two-controlled-level LevelConfig cells through SweepRunner, scalar
// path) and compares two scoreboards per cell pair:
//
//   L1-only : level 0's net savings over its own baseline leakage — the
//             paper's figure of merit.
//   total   : HierarchyEnergy::total_net_savings_frac — every level's
//             leakage (subthreshold + gate), decay hardware, and the
//             global dynamic-energy delta, over the whole hierarchy's
//             baseline leakage.
//
// The L2 array is an order of magnitude larger than the L1, so its books
// dominate: a gated L2 reclaims nearly all of that leakage but every
// decay-induced L2 miss pays full memory latency, while a drowsy L2
// keeps its state at a residual leakage floor whose gate-tunnelling
// share does not shrink with the retention voltage.  Where those forces
// cross, the L1-only winner loses the total ranking — each such pair is
// marked FLIP in the table below.
//
// Knobs:
//   HLCC_HIER_L2_INTERVALS   comma-separated L2 decay intervals
//                            (default "65536,262144,1048576")
//   HLCC_HIER_BENCHMARKS     comma-separated SPECint profile names
//                            (default "gcc,mcf,gzip,twolf")
//   HLCC_INSTRUCTIONS        run length per cell (bench/common.h)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/common.h"

namespace {

std::vector<uint64_t> interval_list_env(const char* name,
                                        std::vector<uint64_t> fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr) {
    return fallback;
  }
  std::vector<uint64_t> out;
  const std::string text(env);
  std::size_t pos = 0;
  for (;;) {
    const std::size_t comma = text.find(',', pos);
    const std::string item = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    out.push_back(harness::env::parse_positive_u64(name, item,
                                                   "decay interval"));
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return out;
}

std::vector<workload::BenchmarkProfile> profile_list_env(
    const char* name, const std::vector<std::string>& fallback) {
  std::vector<std::string> names = fallback;
  if (const char* env = std::getenv(name)) {
    names.clear();
    const std::string text(env);
    std::size_t pos = 0;
    for (;;) {
      const std::size_t comma = text.find(',', pos);
      names.push_back(text.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos));
      if (comma == std::string::npos) {
        break;
      }
      pos = comma + 1;
    }
  }
  std::vector<workload::BenchmarkProfile> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    out.push_back(workload::profile_by_name(n));
  }
  return out;
}

/// Level 0's net savings over level 0's baseline leakage: the paper's
/// L1-only scoreboard, read off the hierarchy rollup.
double l1_only_frac(const harness::ExperimentResult& r) {
  const leakctl::LevelEnergy& l1 = r.hierarchy.levels.at(0);
  return l1.baseline_leakage_j > 0.0 ? l1.net_savings_j / l1.baseline_leakage_j
                                     : 0.0;
}

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  const std::vector<uint64_t> l1_intervals = {4096};
  std::vector<uint64_t> l2_intervals;
  std::vector<workload::BenchmarkProfile> profiles;
  try {
    l2_intervals = interval_list_env("HLCC_HIER_L2_INTERVALS",
                                     {65536, 262144, 1048576});
    profiles = profile_list_env("HLCC_HIER_BENCHMARKS",
                                {"gcc", "mcf", "gzip", "twolf"});
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
    return 2;
  }

  // Fig. 8/9 operating point: 110 C, where leakage is the story.
  const harness::ExperimentConfig base =
      bench::base_builder(11, 110.0).variation(false);

  const auto sweep = [&](const leakctl::TechniqueParams& technique,
                         const char* label) {
    harness::ExperimentConfig cfg = base;
    cfg.technique = technique;
    return harness::joint_interval_sweep(cfg, l1_intervals, l2_intervals,
                                         profiles,
                                         bench::sweep_options(label));
  };
  const std::vector<harness::JointIntervalCell> drowsy =
      sweep(leakctl::TechniqueParams::drowsy(), "hier-drowsy");
  const std::vector<harness::JointIntervalCell> gated =
      sweep(leakctl::TechniqueParams::gated_vss(), "hier-gated");

  std::printf("== Hierarchy sweep: decay/drowsy at L1 AND L2 (110C, L2=11) "
              "==\n");
  std::printf("L1 interval %llu; L1-only = level-0 net / level-0 baseline "
              "(the paper's books),\ntotal = whole-hierarchy net incl. gate "
              "leakage and L2 slowdown costs\n\n",
              static_cast<unsigned long long>(l1_intervals.front()));
  std::printf("%-10s %9s | %18s | %18s | %s\n", "benchmark", "L2 intvl",
              "L1-only  dro/gat", "total    dro/gat", "ranking");
  std::size_t flips = 0;
  for (std::size_t i = 0; i < drowsy.size(); ++i) {
    const harness::JointIntervalCell& d = drowsy[i];
    const harness::JointIntervalCell& g = gated[i];
    const double d_l1 = l1_only_frac(d.result);
    const double g_l1 = l1_only_frac(g.result);
    const double d_tot = d.result.hierarchy.total_net_savings_frac;
    const double g_tot = g.result.hierarchy.total_net_savings_frac;
    const bool l1_drowsy_wins = d_l1 >= g_l1;
    const bool tot_drowsy_wins = d_tot >= g_tot;
    const bool flip = l1_drowsy_wins != tot_drowsy_wins;
    flips += flip ? 1 : 0;
    std::printf("%-10s %8lluk | %7.1f%% %7.1f%% | %7.1f%% %7.1f%% | %s%s\n",
                d.benchmark.c_str(),
                static_cast<unsigned long long>(d.l2_interval / 1024),
                d_l1 * 100.0, g_l1 * 100.0, d_tot * 100.0, g_tot * 100.0,
                tot_drowsy_wins ? "drowsy" : "gated", flip ? "  FLIP" : "");
  }

  // Where does the reversal come from?  Show the L2 books of one pair.
  const harness::JointIntervalCell& d0 = drowsy.front();
  const harness::JointIntervalCell& g0 = gated.front();
  const leakctl::LevelEnergy& dl2 = d0.result.hierarchy.levels.at(1);
  const leakctl::LevelEnergy& gl2 = g0.result.hierarchy.levels.at(1);
  std::printf("\nL2 books, first cell (%s @ %lluk): drowsy residual %.3g J "
              "(gate share %.0f%%), %llu induced misses;\n"
              "  gated residual %.3g J (gate share %.0f%%), %llu induced "
              "misses at full memory latency\n",
              d0.benchmark.c_str(),
              static_cast<unsigned long long>(d0.l2_interval / 1024),
              dl2.technique_leakage_j,
              dl2.technique_leakage_j > 0.0
                  ? 100.0 * dl2.technique_gate_j / dl2.technique_leakage_j
                  : 0.0,
              dl2.induced_misses, gl2.technique_leakage_j,
              gl2.technique_leakage_j > 0.0
                  ? 100.0 * gl2.technique_gate_j / gl2.technique_leakage_j
                  : 0.0,
              gl2.induced_misses);
  if (flips > 0) {
    std::printf("\n%zu of %zu cell pairs reverse the L1-only ranking once "
                "L2 energy is on the books.\n",
                flips, drowsy.size());
  } else {
    std::printf("\nNo cell pair reverses the L1-only ranking on this grid "
                "(gate leakage accounted; see the L2 books above).\n");
  }

  harness::Series d_series{"drowsy", {}};
  harness::Series g_series{"gated-vss", {}};
  for (const harness::JointIntervalCell& c : drowsy) {
    d_series.results.push_back(c.result);
  }
  for (const harness::JointIntervalCell& c : gated) {
    g_series.results.push_back(c.result);
  }
  bench::write_reports(report, "hierarchy: joint L1/L2 leakage control",
                       {d_series, g_series});
  return 0;
}
