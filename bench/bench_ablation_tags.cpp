// Ablation: tags decayed vs tags kept awake (paper Sec. 5.3).
//
// Keeping the tags live removes drowsy's extra penalties (slow hits fall
// to the 1-cycle data wake; true misses pay nothing extra) but forfeits
// the 5-10 % of cache leakage the tags contribute.  For gated-Vss live
// tags buy nothing on the access path — their only use is to enable
// adaptive decay.
#include <cstdio>

#include "bench/common.h"

namespace {

harness::Series run(leakctl::TechniqueParams tech, bool decay_tags) {
  tech.decay_tags = decay_tags;
  harness::SuiteResult suite = harness::run_suite(
      bench::base_builder(11, 110.0).technique(tech).build(),
      bench::sweep_options("ablation-tags"));
  std::printf("%-10s tags %-7s savings %6.2f %%  perf loss %5.2f %%\n",
              tech.name.data(), decay_tags ? "decayed" : "awake",
              suite.mean_net_savings() * 100.0,
              suite.mean_slowdown() * 100.0);
  return {std::string(tech.name) + (decay_tags ? "/tags-decayed"
                                               : "/tags-awake"),
          std::move(suite)};
}

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  std::printf("== Ablation: tag decay (Sec. 5.3), 110C, L2=11 ==\n");
  std::vector<harness::Series> series;
  series.push_back(run(leakctl::TechniqueParams::drowsy(), true));
  series.push_back(run(leakctl::TechniqueParams::drowsy(), false));
  series.push_back(run(leakctl::TechniqueParams::gated_vss(), true));
  series.push_back(run(leakctl::TechniqueParams::gated_vss(), false));
  bench::write_reports(report, "ablation: tag decay", series);
  return 0;
}
