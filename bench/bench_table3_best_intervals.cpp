// Table 3: best decay interval per benchmark for drowsy and gated-Vss
// (85 C, 11-cycle L2).  The paper's qualitative properties: gated-Vss's
// best intervals are longer and spread much more widely than drowsy's.
#include <iostream>

#include "bench/common.h"

int main() {
  harness::ExperimentConfig cfg = bench::base_config(11, 85.0);
  const std::vector<uint64_t> grid = harness::paper_interval_grid();

  std::vector<harness::BestIntervalRow> rows;
  for (const auto& prof : workload::spec2000_profiles()) {
    harness::BestIntervalRow row;
    row.benchmark = std::string(prof.name);
    cfg.technique = leakctl::TechniqueParams::drowsy();
    row.drowsy_interval =
        harness::best_interval_sweep(prof, cfg, grid).best_interval;
    cfg.technique = leakctl::TechniqueParams::gated_vss();
    row.gated_interval =
        harness::best_interval_sweep(prof, cfg, grid).best_interval;
    rows.push_back(row);
  }
  harness::print_best_interval_table(std::cout, "Table 3: best decay intervals",
                                     rows);

  uint64_t dmin = ~0ull, dmax = 0, gmin = ~0ull, gmax = 0;
  for (const auto& r : rows) {
    dmin = std::min(dmin, r.drowsy_interval);
    dmax = std::max(dmax, r.drowsy_interval);
    gmin = std::min(gmin, r.gated_interval);
    gmax = std::max(gmax, r.gated_interval);
  }
  std::cout << "spread: drowsy " << harness::format_interval(dmin) << ".."
            << harness::format_interval(dmax) << ", gated-vss "
            << harness::format_interval(gmin) << ".."
            << harness::format_interval(gmax) << "\n";
  return 0;
}
