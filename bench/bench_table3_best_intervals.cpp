// Table 3: best decay interval per benchmark for drowsy and gated-Vss
// (85 C, 11-cycle L2).  The paper's qualitative properties: gated-Vss's
// best intervals are longer and spread much more widely than drowsy's.
//
// Runs on the sweep engine as two flat benchmark x interval grids.
#include <iostream>

#include "bench/common.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  const std::vector<uint64_t> grid = harness::paper_interval_grid();

  const auto drowsy_sweeps = harness::best_interval_sweeps_all(
      bench::base_builder(11, 85.0)
          .technique(leakctl::TechniqueParams::drowsy())
          .build(),
      grid, bench::sweep_options("table3 drowsy"));
  const auto gated_sweeps = harness::best_interval_sweeps_all(
      bench::base_builder(11, 85.0)
          .technique(leakctl::TechniqueParams::gated_vss())
          .build(),
      grid, bench::sweep_options("table3 gated"));

  std::vector<harness::BestIntervalRow> rows;
  const auto& profiles = workload::spec2000_profiles();
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    rows.push_back({std::string(profiles[i].name),
                    drowsy_sweeps[i].best_interval,
                    gated_sweeps[i].best_interval});
  }
  harness::print_best_interval_table(std::cout, "Table 3: best decay intervals",
                                     rows);

  uint64_t dmin = ~0ull, dmax = 0, gmin = ~0ull, gmax = 0;
  for (const auto& r : rows) {
    dmin = std::min(dmin, r.drowsy_interval);
    dmax = std::max(dmax, r.drowsy_interval);
    gmin = std::min(gmin, r.gated_interval);
    gmax = std::max(gmax, r.gated_interval);
  }
  std::cout << "spread: drowsy " << harness::format_interval(dmin) << ".."
            << harness::format_interval(dmax) << ", gated-vss "
            << harness::format_interval(gmin) << ".."
            << harness::format_interval(gmax) << "\n";

  // Export the best-interval cells (the table's winners carry their
  // decay_interval in the per-benchmark config block).
  harness::Series drowsy_best{"drowsy-best", {}};
  harness::Series gated_best{"gated-vss-best", {}};
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    drowsy_best.results.push_back(drowsy_sweeps[i].best);
    gated_best.results.push_back(gated_sweeps[i].best);
  }
  bench::write_reports(report, "table3: best decay intervals",
                       {drowsy_best, gated_best});
  return 0;
}
