// Extension: the three adaptive decay-interval methods of Sec. 5.4, head
// to head for gated-Vss — the formal feedback controller [31], Zhou et
// al.'s adaptive mode control [33], and Kaxiras et al.'s per-line
// intervals [19] — against the fixed interval and the oracle.
//
// Per benchmark: 4 scheme cells + the 7-interval oracle grid, all in one
// flat 121-cell sweep.
#include <algorithm>
#include <cstdio>

#include "bench/common.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  std::printf("== Extension: adaptive methods (gated-Vss, 85C, L2=11) ==\n");
  std::printf("%-10s %9s %10s %8s %10s %9s\n", "benchmark", "fixed",
              "feedback", "AMC", "per-line", "oracle");
  const std::vector<uint64_t> grid = harness::paper_interval_grid();
  using Scheme = harness::ExperimentConfig::AdaptiveScheme;
  const std::vector<Scheme> schemes = {Scheme::none, Scheme::feedback,
                                       Scheme::amc, Scheme::per_line};
  const harness::ExperimentConfig base =
      bench::base_builder(11, 85.0)
          .technique(leakctl::TechniqueParams::gated_vss())
          .build();

  harness::SweepRunner runner(bench::sweep_options("ext-adaptive"));
  // Per profile: one cell per scheme, then the oracle interval grid.
  for (const auto& prof : workload::spec2000_profiles()) {
    for (const Scheme scheme : schemes) {
      harness::ExperimentConfig cfg = base;
      cfg.adaptive = scheme;
      runner.submit(prof, cfg);
    }
    for (const uint64_t interval : grid) {
      harness::ExperimentConfig cfg = base;
      cfg.decay_interval = interval;
      runner.submit(prof, cfg);
    }
  }
  const std::vector<harness::ExperimentResult> results =
      harness::values(runner.run(), runner.options().fail_fast);

  const std::size_t per_profile = schemes.size() + grid.size();
  const auto& profiles = workload::spec2000_profiles();
  std::vector<harness::Series> series = {{"gated-vss/fixed", {}},
                                         {"gated-vss/feedback", {}},
                                         {"gated-vss/amc", {}},
                                         {"gated-vss/per-line", {}},
                                         {"gated-vss/oracle", {}}};
  double sums[5] = {0, 0, 0, 0, 0};
  for (std::size_t p = 0; p < profiles.size(); ++p) {
    const std::size_t off = p * per_profile;
    double vals[5];
    for (std::size_t s = 0; s < schemes.size(); ++s) {
      vals[s] = results[off + s].energy.net_savings_frac;
      series[s].results.push_back(results[off + s]);
    }
    std::size_t best = off + schemes.size();
    for (std::size_t k = 0; k < grid.size(); ++k) {
      if (results[off + schemes.size() + k].energy.net_savings_frac >
          results[best].energy.net_savings_frac) {
        best = off + schemes.size() + k;
      }
    }
    const double oracle = results[best].energy.net_savings_frac;
    series[4].results.push_back(results[best]);
    vals[4] = oracle;
    std::printf("%-10s %8.2f%% %9.2f%% %7.2f%% %9.2f%% %8.2f%%\n",
                profiles[p].name.data(), vals[0] * 100, vals[1] * 100,
                vals[2] * 100, vals[3] * 100, vals[4] * 100);
    for (int i = 0; i < 5; ++i) {
      sums[i] += vals[i];
    }
  }
  const double n = static_cast<double>(profiles.size());
  std::printf("%-10s %8.2f%% %9.2f%% %7.2f%% %9.2f%% %8.2f%%\n", "AVG",
              sums[0] / n * 100, sums[1] / n * 100, sums[2] / n * 100,
              sums[3] / n * 100, sums[4] / n * 100);
  bench::write_reports(report, "ext: adaptive decay methods", series);
  return 0;
}
