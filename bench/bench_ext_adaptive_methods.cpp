// Extension: the three adaptive decay-interval methods of Sec. 5.4, head
// to head for gated-Vss — the formal feedback controller [31], Zhou et
// al.'s adaptive mode control [33], and Kaxiras et al.'s per-line
// intervals [19] — against the fixed interval and the oracle.
#include <cstdio>

#include "bench/common.h"

namespace {

double run_scheme(const workload::BenchmarkProfile& prof,
                  harness::ExperimentConfig cfg,
                  harness::ExperimentConfig::AdaptiveScheme scheme) {
  cfg.adaptive = scheme;
  return harness::run_experiment(prof, cfg).energy.net_savings_frac;
}

} // namespace

int main() {
  std::printf("== Extension: adaptive methods (gated-Vss, 85C, L2=11) ==\n");
  std::printf("%-10s %9s %10s %8s %10s %9s\n", "benchmark", "fixed",
              "feedback", "AMC", "per-line", "oracle");
  const std::vector<uint64_t> grid = harness::paper_interval_grid();
  double sums[5] = {0, 0, 0, 0, 0};
  using Scheme = harness::ExperimentConfig::AdaptiveScheme;
  for (const auto& prof : workload::spec2000_profiles()) {
    harness::ExperimentConfig cfg = bench::base_config(11, 85.0);
    cfg.technique = leakctl::TechniqueParams::gated_vss();
    const double fixed = run_scheme(prof, cfg, Scheme::none);
    const double feedback = run_scheme(prof, cfg, Scheme::feedback);
    const double amc = run_scheme(prof, cfg, Scheme::amc);
    const double per_line = run_scheme(prof, cfg, Scheme::per_line);
    const double oracle = harness::best_interval_sweep(prof, cfg, grid)
                              .best.energy.net_savings_frac;
    std::printf("%-10s %8.2f%% %9.2f%% %7.2f%% %9.2f%% %8.2f%%\n",
                prof.name.data(), fixed * 100, feedback * 100, amc * 100,
                per_line * 100, oracle * 100);
    sums[0] += fixed;
    sums[1] += feedback;
    sums[2] += amc;
    sums[3] += per_line;
    sums[4] += oracle;
  }
  const double n = 11.0;
  std::printf("%-10s %8.2f%% %9.2f%% %7.2f%% %9.2f%% %8.2f%%\n", "AVG",
              sums[0] / n * 100, sums[1] / n * 100, sums[2] / n * 100,
              sums[3] / n * 100, sums[4] / n * 100);
  return 0;
}
