// Google-benchmark micro-benchmarks of the hot paths: leakage-model
// recomputation (the cost of DVS/thermal tracking), cache access, decay
// machinery, trace generation, and the full controlled access path.
//
// `bench_micro --json <path>` emits the canonical machine-readable run:
// the micro rows, a quick drowsy/gated suite (net savings, slowdown),
// the metrics registry (phase timings, sweep throughput), and run
// metadata, in one schema-1 document.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "hotleakage/kdesign.h"
#include "hotleakage/model.h"
#include "leakctl/controlled_cache.h"
#include "sim/processor.h"
#include "workload/arena.h"
#include "workload/generator.h"

namespace {

void BM_UnitLeakage(benchmark::State& state) {
  const auto& tech = hotleakage::tech_params(hotleakage::TechNode::nm70);
  const hotleakage::OperatingPoint op{.temperature_k = 383.15, .vdd = 0.9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hotleakage::unit_leakage(tech, hotleakage::DeviceType::nmos, op));
  }
}
BENCHMARK(BM_UnitLeakage);

void BM_CellLeakageSram(benchmark::State& state) {
  const auto& tech = hotleakage::tech_params(hotleakage::TechNode::nm70);
  const hotleakage::Cell sram = hotleakage::cells::sram6t(tech);
  const hotleakage::OperatingPoint op{.temperature_k = 383.15, .vdd = 0.9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hotleakage::cell_leakage(tech, sram, op));
  }
}
BENCHMARK(BM_CellLeakageSram);

void BM_OperatingPointChange(benchmark::State& state) {
  // The cost HotLeakage pays every time temperature or Vdd changes —
  // dominated by the variation Monte Carlo when enabled.
  hotleakage::VariationConfig vcfg;
  vcfg.enabled = state.range(0) != 0;
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70, vcfg);
  double t = 360.0;
  for (auto _ : state) {
    t = t < 390.0 ? t + 0.01 : 360.0;
    model.set_operating_point({.temperature_k = t, .vdd = 0.9});
    benchmark::DoNotOptimize(model.variation_factor());
  }
}
BENCHMARK(BM_OperatingPointChange)->Arg(0)->Arg(1);

void BM_CacheAccess(benchmark::State& state) {
  sim::Cache cache({.size_bytes = 64 * 1024, .assoc = 2, .line_bytes = 64,
                    .hit_latency = 2});
  uint64_t addr = 0;
  uint64_t cycle = 0;
  for (auto _ : state) {
    addr = (addr + 64) & 0xFFFFF;
    benchmark::DoNotOptimize(cache.access(addr, false, ++cycle));
  }
}
BENCHMARK(BM_CacheAccess);

/// Fixed-latency backing store: decay-stress isolates the controlled-cache
/// hot path (decay advance + classification) from L2 modeling cost.
class FixedLatencyStore final : public sim::BackingStore {
public:
  unsigned access(uint64_t, bool, uint64_t) override { return 20; }
  void writeback(uint64_t, uint64_t) override {}
};

/// Decay-stress: small decay intervals x large caches, the regime where
/// the epoch tick dominates (paper Figs. 12-13 sweep intervals down to
/// 512 cycles).  Cycles advance 32 per access, so at interval 512 an epoch
/// boundary lands every 4 accesses; the address walk covers 4x the cache,
/// so lines decay and re-fill continuously.  The `event` arg selects the
/// timing-wheel engine (1) or the retained naive-scan reference (0) —
/// their ratio is the recorded speedup (scripts/record_bench.py).
void BM_DecayStress(benchmark::State& state) {
  const uint64_t interval = static_cast<uint64_t>(state.range(0));
  const std::size_t size_kb = static_cast<std::size_t>(state.range(1));
  const bool event_engine = state.range(2) != 0;
  FixedLatencyStore store;
  leakctl::ControlledCacheConfig ccfg;
  ccfg.cache = {.size_bytes = size_kb * 1024, .assoc = 2, .line_bytes = 64,
                .hit_latency = 2};
  ccfg.technique = leakctl::TechniqueParams::drowsy();
  ccfg.policy = leakctl::DecayPolicy::noaccess;
  ccfg.decay_interval = interval;
  ccfg.decay_engine =
      event_engine ? leakctl::DecayEngine::event : leakctl::DecayEngine::reference;
  leakctl::ControlledCache cc(ccfg, store, nullptr);
  const uint64_t addr_mask = size_kb * 1024 * 4 - 1;
  uint64_t addr = 0;
  uint64_t cycle = 0;
  for (auto _ : state) {
    addr = (addr + 64) & addr_mask;
    cycle += 32;
    benchmark::DoNotOptimize(cc.access(addr, false, cycle));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecayStress)
    ->ArgNames({"interval", "kb", "event"})
    ->Args({512, 64, 1})
    ->Args({512, 64, 0})
    ->Args({512, 1024, 1})
    ->Args({512, 1024, 0})
    ->Args({4096, 64, 1})
    ->Args({4096, 64, 0})
    ->Args({4096, 1024, 1})
    ->Args({4096, 1024, 0})
    ->Args({65536, 64, 1})
    ->Args({65536, 64, 0});

void BM_GeneratorNext(benchmark::State& state) {
  workload::Generator gen(workload::profile_by_name("gcc"), 1);
  sim::MicroOp op;
  for (auto _ : state) {
    gen.next(op);
    benchmark::DoNotOptimize(op);
  }
}
BENCHMARK(BM_GeneratorNext);

void BM_ControlledAccess(benchmark::State& state) {
  sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
  sim::MemoryBackend mem(pcfg.memory_latency, nullptr);
  sim::CacheLevel l2(pcfg.l2, mem, nullptr);
  leakctl::ControlledCacheConfig ccfg;
  ccfg.cache = pcfg.l1d;
  ccfg.technique = leakctl::TechniqueParams::gated_vss();
  ccfg.decay_interval = 4096;
  leakctl::ControlledCache cc(ccfg, l2, nullptr);
  uint64_t addr = 0;
  uint64_t cycle = 0;
  for (auto _ : state) {
    addr = (addr + 64) & 0xFFFFF;
    cycle += 2;
    benchmark::DoNotOptimize(cc.access(addr, false, cycle));
  }
}
BENCHMARK(BM_ControlledAccess);

void BM_EndToEndSimulation(benchmark::State& state) {
  // Whole-stack throughput: instructions simulated per second.
  for (auto _ : state) {
    sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
    sim::Processor proc(pcfg);
    sim::BaselineDataPort dport(pcfg.l1d, proc.l2(), nullptr);
    workload::Generator gen(workload::profile_by_name("gzip"), 1);
    benchmark::DoNotOptimize(proc.run(gen, dport, 50'000));
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_EndToEndSimulation);

/// The Table 3 oracle-interval grid — the paper's 7 decay intervals x 4
/// L2 latencies for one benchmark, 28 same-stream cells — through
/// SweepRunner on one thread, batched (one lockstep trace pass drives
/// all 28 controlled-cache replicas) vs scalar (28 independent passes).
/// The batched/scalar ratio at arena:0 is the recorded sweep speedup
/// (scripts/record_bench.py --suite sweep -> BENCH_6.json); the
/// batched:1 arena:1/arena:0 ratio feeds the trace suite (BENCH_7.json).
/// One untimed warm run in the same
/// batch mode precedes the timed loop: it fills the baseline memo
/// (shared across the grid either way) and takes the first-touch page
/// faults of the lane working set, so a single-iteration repetition
/// measures steady state, not allocator cold start.
void BM_Table3Sweep(benchmark::State& state) {
  const bool batched = state.range(0) != 0;
  const bool arena = state.range(1) != 0;
  // Long enough that per-cell setup (cache construction, planner) is a
  // realistic fraction of a cell — the paper's runs are 2M instructions;
  // 200k keeps the scalar arm of the benchmark to a couple of seconds.
  constexpr uint64_t kInstructions = 200'000;
  const workload::BenchmarkProfile prof = workload::profile_by_name("gzip");
  const std::vector<unsigned> l2_lats = {5, 8, 11, 17};
  const std::vector<uint64_t> intervals = harness::paper_interval_grid();

  const auto submit_grid = [&](harness::SweepRunner& runner) {
    for (const unsigned l2 : l2_lats) {
      for (const uint64_t interval : intervals) {
        harness::ExperimentConfig cfg;
        cfg.l2_latency = l2;
        cfg.decay_interval = interval;
        cfg.instructions = kInstructions;
        cfg.variation = false;
        runner.submit(prof, cfg);
      }
    }
  };
  const std::size_t cells = l2_lats.size() * intervals.size();
  const auto run_grid = [&]() {
    harness::SweepOptions opts;
    opts.threads = 1;
    opts.batch = batched ? static_cast<unsigned>(cells) : 1;
    harness::SweepRunner runner(opts);
    submit_grid(runner);
    return harness::values(runner.run());
  };

  harness::clear_baseline_cache();
  // The arena arm measures steady-state replay (the warm run pays the
  // one-time materialization); the arena:0 arm is the pre-arena scalar /
  // batched behavior BENCH_6 gates on.
  workload::TraceArena& ta = workload::TraceArena::instance();
  const bool arena_was = ta.enabled();
  ta.set_enabled(arena);
  ta.clear();
  (void)run_grid(); // untimed warm run, same batch mode as the timed loop
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_grid());
  }
  ta.set_enabled(arena_was);
  ta.clear();
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(cells * kInstructions));
}
BENCHMARK(BM_Table3Sweep)
    ->ArgNames({"batched", "arena"})
    ->Args({1, 0})
    ->Args({0, 0})
    ->Args({1, 1})
    ->Unit(benchmark::kMillisecond);

/// The joint (L1 interval x L2 interval) hierarchy grid: explicit
/// two-controlled-level LevelConfig cells through SweepRunner.  These
/// cells are never lockstep-batched (the planner only batches
/// legacy-shaped configs), so this tracks the scalar hierarchy path's
/// throughput — chained ControlledCaches, per-level residency
/// finalization, and the compute_hierarchy_energy rollup.
void BM_HierarchySweep(benchmark::State& state) {
  const bool arena = state.range(0) != 0;
  constexpr uint64_t kInstructions = 100'000;
  const std::vector<workload::BenchmarkProfile> profiles = {
      workload::profile_by_name("gzip")};
  const std::vector<uint64_t> l1_intervals = {4096};
  const std::vector<uint64_t> l2_intervals = {65536, 262144};
  harness::ExperimentConfig cfg;
  cfg.instructions = kInstructions;
  cfg.variation = false;
  harness::SweepOptions opts;
  opts.threads = 1;
  harness::clear_baseline_cache();
  workload::TraceArena& ta = workload::TraceArena::instance();
  const bool arena_was = ta.enabled();
  ta.set_enabled(arena);
  ta.clear();
  // Untimed warm run: fills the baseline memo and (arena arm) pays the
  // one-time stream materialization, so the timed loop measures the
  // steady-state scalar hierarchy path both arms claim to compare.
  benchmark::DoNotOptimize(harness::joint_interval_sweep(
      cfg, l1_intervals, l2_intervals, profiles, opts));
  for (auto _ : state) {
    benchmark::DoNotOptimize(harness::joint_interval_sweep(
        cfg, l1_intervals, l2_intervals, profiles, opts));
  }
  ta.set_enabled(arena_was);
  ta.clear();
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(l2_intervals.size() * kInstructions));
}
BENCHMARK(BM_HierarchySweep)
    ->ArgNames({"arena"})
    ->Args({0})
    ->Args({1})
    ->Unit(benchmark::kMillisecond);

/// Console reporter that also collects every run for the JSON export.
class CollectingReporter : public benchmark::ConsoleReporter {
public:
  struct Row {
    std::string name;
    long long iterations = 0;
    double real_time = 0.0;
    double cpu_time = 0.0;
    std::string time_unit;
  };

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      rows_.push_back({run.benchmark_name(), run.iterations,
                       run.GetAdjustedRealTime(), run.GetAdjustedCPUTime(),
                       benchmark::GetTimeUnitString(run.time_unit)});
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }

  const std::vector<Row>& rows() const { return rows_; }

private:
  std::vector<Row> rows_;
};

} // namespace

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!report.requested()) {
    return 0;
  }

  // The canonical JSON also carries the paper-level numbers: a quick
  // drowsy/gated suite at the Fig. 8/9 operating point feeds the series
  // section with per-benchmark net savings and slowdown, and populates
  // the phase timers the micro rows cannot.
  auto [drowsy, gated] = bench::run_both(bench::base_config(11, 110.0),
                                         "micro-suite");
  const std::vector<harness::Series> series = {drowsy, gated};
  harness::json::Value doc =
      harness::suite_report("micro: hot paths + quick suite", series);
  harness::json::Value micro = harness::json::Value::array();
  for (const CollectingReporter::Row& row : reporter.rows()) {
    harness::json::Value r;
    r["name"] = row.name;
    r["iterations"] = row.iterations;
    r["real_time"] = row.real_time;
    r["cpu_time"] = row.cpu_time;
    r["time_unit"] = row.time_unit;
    micro.push_back(std::move(r));
  }
  doc["micro"] = std::move(micro);
  try {
    if (!report.json_path.empty()) {
      harness::write_json_file(report.json_path, doc);
      std::fprintf(stderr, "[report] wrote JSON to %s\n",
                   report.json_path.c_str());
    }
    if (!report.csv_path.empty()) {
      harness::write_csv_file(report.csv_path, series);
      std::fprintf(stderr, "[report] wrote CSV to %s\n",
                   report.csv_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "report export failed: %s\n", e.what());
    return 1;
  }
  return 0;
}
