// Google-benchmark micro-benchmarks of the hot paths: leakage-model
// recomputation (the cost of DVS/thermal tracking), cache access, decay
// machinery, trace generation, and the full controlled access path.
#include <benchmark/benchmark.h>

#include "hotleakage/kdesign.h"
#include "hotleakage/model.h"
#include "leakctl/controlled_cache.h"
#include "sim/processor.h"
#include "workload/generator.h"

namespace {

void BM_UnitLeakage(benchmark::State& state) {
  const auto& tech = hotleakage::tech_params(hotleakage::TechNode::nm70);
  const hotleakage::OperatingPoint op{.temperature_k = 383.15, .vdd = 0.9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        hotleakage::unit_leakage(tech, hotleakage::DeviceType::nmos, op));
  }
}
BENCHMARK(BM_UnitLeakage);

void BM_CellLeakageSram(benchmark::State& state) {
  const auto& tech = hotleakage::tech_params(hotleakage::TechNode::nm70);
  const hotleakage::Cell sram = hotleakage::cells::sram6t(tech);
  const hotleakage::OperatingPoint op{.temperature_k = 383.15, .vdd = 0.9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(hotleakage::cell_leakage(tech, sram, op));
  }
}
BENCHMARK(BM_CellLeakageSram);

void BM_OperatingPointChange(benchmark::State& state) {
  // The cost HotLeakage pays every time temperature or Vdd changes —
  // dominated by the variation Monte Carlo when enabled.
  hotleakage::VariationConfig vcfg;
  vcfg.enabled = state.range(0) != 0;
  hotleakage::LeakageModel model(hotleakage::TechNode::nm70, vcfg);
  double t = 360.0;
  for (auto _ : state) {
    t = t < 390.0 ? t + 0.01 : 360.0;
    model.set_operating_point({.temperature_k = t, .vdd = 0.9});
    benchmark::DoNotOptimize(model.variation_factor());
  }
}
BENCHMARK(BM_OperatingPointChange)->Arg(0)->Arg(1);

void BM_CacheAccess(benchmark::State& state) {
  sim::Cache cache({.size_bytes = 64 * 1024, .assoc = 2, .line_bytes = 64,
                    .hit_latency = 2});
  uint64_t addr = 0;
  uint64_t cycle = 0;
  for (auto _ : state) {
    addr = (addr + 64) & 0xFFFFF;
    benchmark::DoNotOptimize(cache.access(addr, false, ++cycle));
  }
}
BENCHMARK(BM_CacheAccess);

void BM_GeneratorNext(benchmark::State& state) {
  workload::Generator gen(workload::profile_by_name("gcc"), 1);
  sim::MicroOp op;
  for (auto _ : state) {
    gen.next(op);
    benchmark::DoNotOptimize(op);
  }
}
BENCHMARK(BM_GeneratorNext);

void BM_ControlledAccess(benchmark::State& state) {
  sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
  sim::L2System l2(pcfg.l2, pcfg.memory_latency, nullptr);
  leakctl::ControlledCacheConfig ccfg;
  ccfg.cache = pcfg.l1d;
  ccfg.technique = leakctl::TechniqueParams::gated_vss();
  ccfg.decay_interval = 4096;
  leakctl::ControlledCache cc(ccfg, l2, nullptr);
  uint64_t addr = 0;
  uint64_t cycle = 0;
  for (auto _ : state) {
    addr = (addr + 64) & 0xFFFFF;
    cycle += 2;
    benchmark::DoNotOptimize(cc.access(addr, false, cycle));
  }
}
BENCHMARK(BM_ControlledAccess);

void BM_EndToEndSimulation(benchmark::State& state) {
  // Whole-stack throughput: instructions simulated per second.
  for (auto _ : state) {
    sim::ProcessorConfig pcfg = sim::ProcessorConfig::table2(11);
    sim::Processor proc(pcfg);
    sim::BaselineDataPort dport(pcfg.l1d, proc.l2(), nullptr);
    workload::Generator gen(workload::profile_by_name("gzip"), 1);
    benchmark::DoNotOptimize(proc.run(gen, dport, 50'000));
  }
  state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_EndToEndSimulation);

} // namespace

BENCHMARK_MAIN();
