// Ablation: inter-die parameter variation on vs off (paper Sec. 3.3).
//
// Variation raises the expected leakage (convexity), which raises the
// absolute joules at stake; the relative technique comparison is stable.
#include <cstdio>

#include "bench/common.h"
#include "hotleakage/variation.h"

int main(int argc, char** argv) {
  const harness::ReportOptions report = bench::parse_cli(argc, argv);
  std::printf("== Ablation: inter-die variation, 110C, L2=11 ==\n");
  const auto& tech70 = hotleakage::tech_params(hotleakage::TechNode::nm70);
  const hotleakage::OperatingPoint op =
      hotleakage::OperatingPoint::at_celsius(110.0, 0.9);
  const auto rn =
      hotleakage::interdie_variation(tech70, hotleakage::DeviceType::nmos, op);
  std::printf("NMOS leakage factor: mean %.3f (min %.3f, max %.3f, "
              "sigma %.3f) over Monte-Carlo dies\n",
              rn.mean_factor, rn.min_factor, rn.max_factor, rn.stddev_factor);

  std::vector<harness::Series> series;
  for (bool variation : {false, true}) {
    harness::SuiteResult suite = harness::run_suite(
        bench::base_builder(11, 110.0)
            .technique(leakctl::TechniqueParams::gated_vss())
            .variation(variation)
            .build(),
        bench::sweep_options("ablation-variation"));
    double base_leak_mj = 0.0;
    for (const auto& r : suite) {
      base_leak_mj += r.energy.baseline_leakage_j * 1e3;
    }
    std::printf("variation %-3s  gated-vss savings %6.2f %%  suite baseline "
                "leakage %7.3f mJ\n",
                variation ? "on" : "off", suite.mean_net_savings() * 100.0,
                base_leak_mj);
    series.push_back({variation ? "gated-vss/variation-on"
                                : "gated-vss/variation-off",
                      std::move(suite)});
  }
  bench::write_reports(report, "ablation: inter-die variation", series);
  return 0;
}
